// Client-facing service protocol: the replicated KV/bank request/response
// codec (LEB128 via src/util/serialization, like every other wire format in
// the tree) plus the varint-length stream framing clients speak on the
// service socket.
//
// Exactly-once semantics ride on (client_id, seq): a client retries a
// request with the SAME identity until it sees the reply, and the server's
// dedup table re-serves the cached reply instead of re-executing. Replies
// carry the identity back so clients match responses to retries.
//
// Two layers share these types:
//   * the external frame clients exchange with a node's ServiceFrontend:
//     [varint body-length][body], body = encoded Request or Response;
//   * the internal app payload a frontend injects into the recovery
//     runtime ([kTagRequest][request fields]) and ServiceApp's
//     inter-process credit transfer ([kTagCredit][account][amount]).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/util/bytes.h"
#include "src/util/ids.h"
#include "src/util/serialization.h"

namespace optrec::service {

enum class Op : std::uint8_t {
  kPut = 1,       // key := value
  kGet = 2,       // read key
  kTransfer = 3,  // move value from account `key` to account `to_account`
  kBalance = 4,   // read account `key`
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,      // GET of a never-written key / unknown account
  kInsufficient = 2,  // transfer exceeds the source balance
  kWrongNode = 3,     // key's owner process is not hosted on this node
};

const char* op_name(Op op);
const char* status_name(Status status);

/// The process that owns `key` (keys and accounts share the space).
ProcessId key_owner(std::uint64_t key, std::size_t n);

struct Request {
  Op op = Op::kGet;
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;         // PUT/GET key; TRANSFER/BALANCE account
  std::uint64_t to_account = 0;  // TRANSFER destination
  std::uint64_t value = 0;       // PUT value; TRANSFER amount

  Bytes encode() const;
  void encode_to(Writer& w) const;
  /// Throws DecodeError on malformed input.
  static Request decode(const Bytes& body);
  static Request decode_from(Reader& r);

  ProcessId owner(std::size_t n) const { return key_owner(key, n); }
  std::string describe() const;
};

struct Response {
  Status status = Status::kOk;
  Op op = Op::kGet;
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  /// GET/PUT: the key's value. TRANSFER: the amount moved. BALANCE: the
  /// account balance.
  std::uint64_t value = 0;
  /// Per-key write version, monotone under PUT; the client-side
  /// monotonic-reads oracle compares these. 0 for non-KV ops.
  std::uint64_t kver = 0;
  /// kWrongNode: the owning process id, so the client can re-route.
  ProcessId owner = 0;

  Bytes encode() const;
  static Response decode(const Bytes& body);
  std::string describe() const;
};

// --- stream framing ---------------------------------------------------------

/// Upper bound on one framed body; far above any real request, exists only
/// to bound a misbehaving client.
constexpr std::size_t kMaxServiceFrameBytes = 64 * 1024;

/// Append [varint length][body] to `out`.
void append_frame(Bytes& out, const Bytes& body);

/// Extract the next complete frame from `buf` starting at `*pos`, advancing
/// `*pos` past it. nullopt = incomplete (wait for more bytes). Throws
/// DecodeError on an over-cap or malformed length header — drop the
/// connection.
std::optional<Bytes> next_frame(const Bytes& buf, std::size_t* pos);

// --- internal app payloads --------------------------------------------------

/// First payload byte of messages delivered to ServiceApp.
constexpr std::uint8_t kTagRequest = 1;  // injected client request
constexpr std::uint8_t kTagCredit = 2;   // inter-process transfer credit

Bytes encode_request_payload(const Request& req);
Bytes encode_credit_payload(std::uint64_t to_account, std::uint64_t amount);

}  // namespace optrec::service
