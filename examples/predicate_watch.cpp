// Predicate detection over fault-tolerant vector clocks (paper Section 4).
//
// The FTVC keeps tracking causality for useful states even across failures
// (Theorem 1), so the classic weak-conjunctive-predicate detector (Garg &
// Waldecker) runs unchanged on FTVC timestamps. Here each process watches
// the local predicate "my counter is an exact multiple of 50"; a crash is
// injected mid-run; candidates from states later rolled back or lost are
// withdrawn (the oracle tells us which survived), and detection looks for a
// consistent cut where the predicate held everywhere simultaneously.
//
//   ./build/examples/predicate_watch [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/app/counter_app.h"
#include "src/core/dg_process.h"
#include "src/detect/predicate_detector.h"
#include "src/util/log.h"

using namespace optrec;

namespace {
struct Candidate {
  ProcessId pid;
  Ftvc clock;
  StateId state;
  std::int64_t value;
};
}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;
  constexpr std::size_t kN = 3;

  Simulation sim(seed);
  Network net(sim, {});
  Metrics metrics;
  CausalityOracle oracle;

  ProcessConfig pconfig;
  pconfig.flush_interval = millis(20);
  pconfig.checkpoint_interval = millis(100);

  CounterAppConfig app_config;
  app_config.initial_jobs = 8;
  app_config.hops = 64;
  app_config.all_seed = true;

  std::vector<Candidate> candidates;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  for (ProcessId pid = 0; pid < kN; ++pid) {
    procs.push_back(std::make_unique<DamaniGargProcess>(
        RuntimeEnv(sim, sim, net), pid, kN, std::make_unique<CounterApp>(pid, kN, app_config),
        pconfig, metrics, &oracle));
    procs.back()->set_delivery_observer(
        [&candidates](const DamaniGargProcess& p, const Ftvc& delivery_clock) {
          const auto& counter = dynamic_cast<const CounterApp&>(p.app());
          if (counter.value() > 0 && counter.value() % 50 == 0) {
            candidates.push_back({p.pid(), delivery_clock,
                                  p.current_state_id(), counter.value()});
          }
        });
  }
  for (auto& p : procs) {
    sim.schedule_at(0, [&p] { p->start(); });
  }
  sim.schedule_at(millis(35), [&procs] { procs[1]->crash(); });
  sim.run(seconds(10));

  std::printf("\ncollected %zu raw candidates; withdrawing non-useful ones "
              "(lost or rolled back)...\n",
              candidates.size());
  ConjunctivePredicateDetector detector(kN);
  std::size_t useful = 0;
  for (const auto& c : candidates) {
    if (oracle.is_useful(c.state)) {
      detector.observe(c.pid, c.clock);
      ++useful;
    }
  }
  std::printf("%zu useful candidates fed to the detector\n", useful);

  const auto result = detector.detect();
  if (result.detected) {
    std::printf("\nDETECTED: a consistent cut where every counter was a "
                "multiple of 50:\n");
    for (ProcessId pid = 0; pid < kN; ++pid) {
      std::printf("  P%u at %s\n", pid, result.cut[pid].to_string().c_str());
    }
  } else {
    std::printf("\nno consistent cut found (predicate never held "
                "simultaneously) — try another seed\n");
  }
  return 0;
}
