// Narrated replay of the paper's worked examples (Figures 1 and 5).
//
// The network is configured with an hour-long delay and every interesting
// message is delivered by hand, so the exact interleavings of the figures —
// including the adversarial ones (a new-incarnation message overtaking the
// failure token) — are reproduced deterministically. The same sequences are
// asserted in tests/scenario/; this example prints them for humans.
//
//   ./build/examples/paper_figures
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/dg_process.h"
#include "src/util/log.h"
#include "src/util/serialization.h"

using namespace optrec;

namespace {

/// Minimal scriptable app: payload = list of (dst, nested payload).
class ScriptApp : public App {
 public:
  void on_start(AppContext&) override {}
  void on_message(AppContext& ctx, ProcessId, const Bytes& payload) override {
    Reader r(payload);
    const std::uint32_t count = r.get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const ProcessId dst = r.get_u32();
      ctx.send(dst, r.get_bytes());
    }
    ++handled_;
  }
  Bytes snapshot() const override {
    Writer w;
    w.put_u64(handled_);
    return w.take();
  }
  void restore(const Bytes& state) override {
    Reader r(state);
    handled_ = r.get_u64();
  }

 private:
  std::uint64_t handled_ = 0;
};

Bytes sends(const std::vector<std::pair<ProcessId, Bytes>>& list) {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(list.size()));
  for (const auto& [dst, payload] : list) {
    w.put_u32(dst);
    w.put_bytes(payload);
  }
  return w.take();
}

Bytes leaf() { return sends({}); }

Message craft(ProcessId src, ProcessId dst, const Ftvc& clock, Bytes payload,
              std::uint64_t seq) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.src_version = clock.entry(src).ver;
  m.send_seq = seq;
  m.clock = clock;
  m.payload = std::move(payload);
  return m;
}

struct Stage {
  Stage() : sim(7), net(sim, far()) {
    net.set_message_tap([this](const Message& m) { tapped.push_back(m); });
    net.set_token_tap([this](const Token& t) { tokens.push_back(t); });
    ProcessConfig config;
    config.checkpoint_interval = 0;
    config.flush_interval = 0;
    config.restart_delay = millis(5);
    for (ProcessId pid = 0; pid < 3; ++pid) {
      procs.push_back(std::make_unique<DamaniGargProcess>(
          RuntimeEnv(sim, sim, net), pid, 3, std::make_unique<ScriptApp>(), config, metrics,
          nullptr));
    }
    for (auto& p : procs) {
      sim.schedule_at(0, [&p] { p->start(); });
    }
    sim.run(1);
  }
  static NetworkConfig far() {
    NetworkConfig c;
    c.min_delay = c.max_delay = seconds(3600);
    return c;
  }
  DamaniGargProcess& p(ProcessId pid) { return *procs[pid]; }
  void settle() { sim.run(sim.now() + millis(20)); }

  Simulation sim;
  Network net;
  Metrics metrics;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  std::vector<Message> tapped;
  std::vector<Token> tokens;
};

void show(Stage& stage, const char* label) {
  std::printf("%-34s P0 %s  P1 %s  P2 %s\n", label,
              stage.p(0).clock().to_string().c_str(),
              stage.p(1).clock().to_string().c_str(),
              stage.p(2).clock().to_string().c_str());
}

void figure1() {
  std::printf("==== Figure 1: FTVC across a failure ====\n");
  Stage stage;
  show(stage, "initial states");

  stage.p(1).on_message(craft(0, 1, stage.p(0).clock(), leaf(), 1));
  show(stage, "s11: P0 -> P1 delivered");
  stage.p(1).storage().log().flush();
  std::printf("%s\n", "  (P1 flushes its log: s11 is now recoverable)");

  Ftvc p0b(0, 3);
  p0b.tick_send();
  stage.p(1).on_message(craft(0, 1, p0b, sends({{2, leaf()}}), 2));
  const Message to_p2 = stage.tapped.at(0);
  stage.p(2).on_message(to_p2);
  show(stage, "s12,s22: P1 -> P2 delivered");
  const Ftvc s22 = stage.p(2).clock();

  stage.p(1).crash();
  stage.settle();
  const Token token = stage.tokens.at(0);
  std::printf("  f10: P1 fails; restores s11; token %s; lost receipts: %llu\n",
              token.describe().c_str(),
              (unsigned long long)stage.metrics.messages_lost_in_crash);
  show(stage, "r10: P1 restarted as v1");

  stage.p(2).on_token(token);
  show(stage, "r20: P2 rolled back (orphan)");
  std::printf("  Section 4.1 caveat: r20.c < s22.c is %s, yet r20 -/-> s22 "
              "(s22 is an orphan)\n\n",
              stage.p(2).clock().less_than(s22) ? "true" : "false");
}

void figure5() {
  std::printf("==== Figure 5: postponement, rollback, obsolete discard ====\n");
  Stage stage;

  stage.p(1).on_message(
      craft(0, 1, stage.p(0).clock(), sends({{2, leaf()}, {0, leaf()}}), 1));
  const Message m0 = stage.tapped.at(0);  // doomed send to P2
  const Message m1 = stage.tapped.at(1);  // doomed send to P0
  stage.p(0).on_message(m1);
  std::printf("  P1 (unlogged) sends m0->P2, m1->P0; P0 delivers m1\n");

  stage.p(1).crash();
  stage.settle();
  const Token token = stage.tokens.at(0);
  std::printf("  f10: P1 fails, loses the receipt, announces %s\n",
              token.describe().c_str());

  stage.p(1).on_message(
      craft(2, 1, stage.p(2).clock(), sends({{0, leaf()}}), 2));
  const Message m2 = stage.tapped.at(2);
  std::printf("  P1 v1 sends m2->P0 (clock %s)\n", m2.clock.to_string().c_str());

  stage.p(0).on_message(m2);
  std::printf("  m2 overtakes the token: P0 postpones it (%zu held)\n",
              stage.p(0).pending_count());

  stage.p(0).on_token(token);
  std::printf("  token reaches P0: orphan detected -> %llu rollback(s); m2 "
              "released and delivered (P0 delivered=%llu)\n",
              (unsigned long long)stage.metrics.rollbacks,
              (unsigned long long)stage.p(0).delivered_count());
  stage.settle();
  std::printf("  re-enqueued m1 re-checked and discarded as obsolete "
              "(total obsolete=%llu)\n",
              (unsigned long long)stage.metrics.messages_discarded_obsolete);

  stage.p(2).on_token(token);
  stage.p(2).on_message(m0);
  std::printf("  m0 reaches P2 after the token: discarded as obsolete "
              "(total obsolete=%llu); P2 never rolls back\n",
              (unsigned long long)stage.metrics.messages_discarded_obsolete);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  figure1();
  figure5();
  return 0;
}
