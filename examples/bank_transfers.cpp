// Bank transfers: application-level correctness under failures.
//
// Each process is an account holding 1000 units; transfers hop between
// accounts carrying real value. Two processes crash mid-run. The demo runs
// twice — without and with Remark-1 retransmission — and audits the money:
//
//  * consistency (no duplication) holds either way: a rollback undone on one
//    side only would mint money, and the protocol never allows it;
//  * conservation (no destruction) additionally needs retransmission —
//    receipts wiped from volatile memory are otherwise gone with their value
//    (exactly the paper's Remark 1).
//
//   ./build/examples/bank_transfers [seed]
#include <cstdio>
#include <cstdlib>

#include "src/app/bank_app.h"
#include "src/harness/scenario.h"
#include "src/util/log.h"

using namespace optrec;

namespace {

std::int64_t run_bank(std::uint64_t seed, bool retransmit) {
  ScenarioConfig config;
  config.n = 5;
  config.seed = seed;
  config.workload.kind = WorkloadKind::kBank;
  config.workload.intensity = 4;
  config.workload.depth = 40;
  config.process.flush_interval = millis(25);
  config.process.checkpoint_interval = millis(120);
  config.process.retransmit_on_failure = retransmit;
  config.failures.crashes = {{millis(35), 1}, {millis(80), 3}};

  Scenario scenario(config);
  const bool quiesced = scenario.run();

  std::int64_t total = 0;
  std::printf("  balances:");
  for (ProcessId pid = 0; pid < scenario.size(); ++pid) {
    const auto& bank = dynamic_cast<const BankApp&>(scenario.process(pid).app());
    std::printf(" P%u=%lld", pid, (long long)bank.balance());
    total += bank.balance();
  }
  std::printf("\n  quiesced=%s consistent=%s retransmissions=%llu "
              "duplicates filtered=%llu\n",
              quiesced ? "yes" : "NO",
              scenario.oracle()->check_consistency().empty() ? "yes" : "NO",
              (unsigned long long)scenario.metrics().retransmissions,
              (unsigned long long)
                  scenario.metrics().messages_discarded_duplicate);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const std::int64_t expected = 5 * 1000;

  std::printf("initial total: %lld units across 5 accounts\n\n",
              (long long)expected);

  std::printf("[1] plain optimistic recovery (no retransmission):\n");
  const std::int64_t without = run_bank(seed, false);
  std::printf("  total=%lld  =>  %lld units vanished with wiped receipts\n\n",
              (long long)without, (long long)(expected - without));

  std::printf("[2] with Remark-1 send-history retransmission:\n");
  const std::int64_t with = run_bank(seed, true);
  std::printf("  total=%lld  =>  %s\n", (long long)with,
              with == expected ? "fully conserved" : "UNEXPECTED imbalance");

  return with == expected && without <= expected ? 0 : 1;
}
