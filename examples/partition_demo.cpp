// Network partition during recovery.
//
// The cluster splits into {P0,P1} | {P2,P3} just before P1 crashes. P1
// restarts *inside* its partition — tokens to the far side are queued by the
// reliable token transport and delivered after the heal. Nothing blocks:
// this is the paper's "tolerate network partitioning" property (a process
// never depends on information stored elsewhere to restart).
//
//   ./build/examples/partition_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "src/harness/experiment.h"
#include "src/util/log.h"

using namespace optrec;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);

  ScenarioConfig config;
  config.n = 4;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  config.workload.kind = WorkloadKind::kGossip;
  config.workload.intensity = 3;
  config.workload.depth = 12;
  config.process.flush_interval = millis(20);

  PartitionEvent split;
  split.at = millis(25);
  split.heal_at = millis(250);
  split.groups = {{0, 1}, {2, 3}};
  config.failures.partitions.push_back(split);
  config.failures.crashes = {{millis(40), 1}};

  std::printf("partitioning {P0,P1} | {P2,P3} at 25ms, crashing P1 at 40ms, "
              "healing at 250ms...\n\n");
  const ExperimentResult result = run_experiment(config);

  std::printf("\n--- outcome ---\n");
  std::printf("quiesced:             %s\n", result.quiesced ? "yes" : "NO");
  std::printf("P1 restarted:         %llu time(s), blocked for %llu us\n",
              (unsigned long long)result.metrics.restarts,
              (unsigned long long)result.metrics.recovery_blocked_time);
  std::printf("deliveries retried:   %llu (held across partition/downtime)\n",
              (unsigned long long)result.net.messages_retried);
  std::printf("tokens delivered:     %llu of %llu sent (all, eventually)\n",
              (unsigned long long)result.net.tokens_delivered,
              (unsigned long long)result.net.tokens_sent);
  std::printf("consistency:          %s\n",
              result.violations.empty() ? "consistent" : "VIOLATED");
  return result.quiesced && result.violations.empty() &&
                 result.metrics.recovery_blocked_time == 0
             ? 0
             : 1;
}
