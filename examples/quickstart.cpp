// Quickstart: the smallest end-to-end use of the optrec library.
//
// Four processes run a randomized counter workload under the Damani-Garg
// optimistic recovery protocol; one of them is crashed mid-run. Watch the
// narration: the failed process restores its checkpoint, replays its stable
// log, broadcasts its failure token and keeps computing immediately —
// everyone else rolls back at most once, asynchronously.
//
//   ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "src/harness/experiment.h"
#include "src/util/log.h"

using namespace optrec;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);  // narrate crashes, restarts, rollbacks

  ScenarioConfig config;
  config.n = 4;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  config.protocol = ProtocolKind::kDamaniGarg;

  // Workload: every process seeds 6 jobs that hop 48 times through the
  // cluster, adding to each visited counter.
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;

  // Optimistic logging: receipts are flushed to stable storage every 20ms
  // of simulated time; checkpoints every 100ms; no synchronous writes on
  // the message path.
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(100);

  // Crash P1 at t=40ms into the run.
  config.failures = FailurePlan::single(1, millis(40));

  std::printf("running %zu processes under %s, crashing P1 at t=40ms...\n\n",
              config.n, protocol_name(config.protocol));

  const ExperimentResult result = run_experiment(config);

  std::printf("\n--- run summary ---\n");
  std::printf("quiesced:              %s (t=%.1f ms simulated)\n",
              result.quiesced ? "yes" : "NO", result.end_time / 1000.0);
  std::printf("messages delivered:    %llu\n",
              (unsigned long long)result.metrics.messages_delivered);
  std::printf("lost in crash:         %llu (received but not yet logged)\n",
              (unsigned long long)result.metrics.messages_lost_in_crash);
  std::printf("replayed on restart:   %llu\n",
              (unsigned long long)result.metrics.messages_replayed);
  std::printf("discarded as obsolete: %llu\n",
              (unsigned long long)result.metrics.messages_discarded_obsolete);
  std::printf("rollbacks:             %llu (max %llu per process per failure)\n",
              (unsigned long long)result.metrics.rollbacks,
              (unsigned long long)
                  result.metrics.max_rollbacks_per_process_per_failure());
  std::printf("recovery blocked time: %llu us (asynchronous recovery!)\n",
              (unsigned long long)result.metrics.recovery_blocked_time);
  std::printf("piggyback per message: %.1f bytes (the O(n) FTVC)\n",
              result.metrics.piggyback_per_message());
  std::printf("consistency check:     %s\n",
              result.violations.empty() ? "consistent" : "VIOLATED");
  for (const auto& v : result.violations) std::printf("  !! %s\n", v.c_str());
  return result.violations.empty() && result.quiesced ? 0 : 1;
}
