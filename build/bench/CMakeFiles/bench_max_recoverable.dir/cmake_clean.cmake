file(REMOVE_RECURSE
  "CMakeFiles/bench_max_recoverable.dir/bench_max_recoverable.cpp.o"
  "CMakeFiles/bench_max_recoverable.dir/bench_max_recoverable.cpp.o.d"
  "bench_max_recoverable"
  "bench_max_recoverable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_max_recoverable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
