# Empty dependencies file for bench_max_recoverable.
# This may be replaced when dependencies are built.
