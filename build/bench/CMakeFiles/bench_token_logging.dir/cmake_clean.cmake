file(REMOVE_RECURSE
  "CMakeFiles/bench_token_logging.dir/bench_token_logging.cpp.o"
  "CMakeFiles/bench_token_logging.dir/bench_token_logging.cpp.o.d"
  "bench_token_logging"
  "bench_token_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_token_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
