# Empty compiler generated dependencies file for bench_token_logging.
# This may be replaced when dependencies are built.
