file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_failures.dir/bench_concurrent_failures.cpp.o"
  "CMakeFiles/bench_concurrent_failures.dir/bench_concurrent_failures.cpp.o.d"
  "bench_concurrent_failures"
  "bench_concurrent_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
