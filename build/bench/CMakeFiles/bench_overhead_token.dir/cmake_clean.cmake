file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_token.dir/bench_overhead_token.cpp.o"
  "CMakeFiles/bench_overhead_token.dir/bench_overhead_token.cpp.o.d"
  "bench_overhead_token"
  "bench_overhead_token.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
