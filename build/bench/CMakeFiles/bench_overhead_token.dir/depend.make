# Empty dependencies file for bench_overhead_token.
# This may be replaced when dependencies are built.
