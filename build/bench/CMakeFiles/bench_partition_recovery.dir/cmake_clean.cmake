file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_recovery.dir/bench_partition_recovery.cpp.o"
  "CMakeFiles/bench_partition_recovery.dir/bench_partition_recovery.cpp.o.d"
  "bench_partition_recovery"
  "bench_partition_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
