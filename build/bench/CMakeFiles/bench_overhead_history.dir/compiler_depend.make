# Empty compiler generated dependencies file for bench_overhead_history.
# This may be replaced when dependencies are built.
