file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_history.dir/bench_overhead_history.cpp.o"
  "CMakeFiles/bench_overhead_history.dir/bench_overhead_history.cpp.o.d"
  "bench_overhead_history"
  "bench_overhead_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
