# Empty compiler generated dependencies file for bench_fig2_ftvc_ops.
# This may be replaced when dependencies are built.
