# Empty compiler generated dependencies file for bench_overhead_piggyback.
# This may be replaced when dependencies are built.
