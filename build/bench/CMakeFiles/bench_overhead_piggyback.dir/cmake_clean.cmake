file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_piggyback.dir/bench_overhead_piggyback.cpp.o"
  "CMakeFiles/bench_overhead_piggyback.dir/bench_overhead_piggyback.cpp.o.d"
  "bench_overhead_piggyback"
  "bench_overhead_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
