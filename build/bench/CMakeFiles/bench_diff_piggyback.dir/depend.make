# Empty dependencies file for bench_diff_piggyback.
# This may be replaced when dependencies are built.
