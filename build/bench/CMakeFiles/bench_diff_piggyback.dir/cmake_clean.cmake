file(REMOVE_RECURSE
  "CMakeFiles/bench_diff_piggyback.dir/bench_diff_piggyback.cpp.o"
  "CMakeFiles/bench_diff_piggyback.dir/bench_diff_piggyback.cpp.o.d"
  "bench_diff_piggyback"
  "bench_diff_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diff_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
