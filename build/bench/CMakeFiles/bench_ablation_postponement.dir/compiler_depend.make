# Empty compiler generated dependencies file for bench_ablation_postponement.
# This may be replaced when dependencies are built.
