file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_postponement.dir/bench_ablation_postponement.cpp.o"
  "CMakeFiles/bench_ablation_postponement.dir/bench_ablation_postponement.cpp.o.d"
  "bench_ablation_postponement"
  "bench_ablation_postponement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_postponement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
