# Empty dependencies file for bench_fig5_recovery.
# This may be replaced when dependencies are built.
