file(REMOVE_RECURSE
  "CMakeFiles/bench_domino_rollbacks.dir/bench_domino_rollbacks.cpp.o"
  "CMakeFiles/bench_domino_rollbacks.dir/bench_domino_rollbacks.cpp.o.d"
  "bench_domino_rollbacks"
  "bench_domino_rollbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domino_rollbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
