# Empty compiler generated dependencies file for bench_domino_rollbacks.
# This may be replaced when dependencies are built.
