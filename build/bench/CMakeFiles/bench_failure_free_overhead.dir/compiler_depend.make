# Empty compiler generated dependencies file for bench_failure_free_overhead.
# This may be replaced when dependencies are built.
