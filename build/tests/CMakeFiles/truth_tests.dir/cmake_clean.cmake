file(REMOVE_RECURSE
  "CMakeFiles/truth_tests.dir/truth/oracle_test.cpp.o"
  "CMakeFiles/truth_tests.dir/truth/oracle_test.cpp.o.d"
  "truth_tests"
  "truth_tests.pdb"
  "truth_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
