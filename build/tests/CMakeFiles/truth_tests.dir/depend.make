# Empty dependencies file for truth_tests.
# This may be replaced when dependencies are built.
