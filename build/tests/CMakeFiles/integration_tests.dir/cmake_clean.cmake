file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/ablation_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/ablation_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/app_invariants_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/app_invariants_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/baselines_deep_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/baselines_deep_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/baselines_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/baselines_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/dg_adversarial_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/dg_adversarial_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/dg_basic_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/dg_basic_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/dg_recovery_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/dg_recovery_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/extreme_conditions_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/extreme_conditions_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/features_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/features_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/scale_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/scale_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
