
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/ablation_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/ablation_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/ablation_test.cpp.o.d"
  "/root/repo/tests/integration/app_invariants_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/app_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/app_invariants_test.cpp.o.d"
  "/root/repo/tests/integration/baselines_deep_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/baselines_deep_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/baselines_deep_test.cpp.o.d"
  "/root/repo/tests/integration/baselines_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/baselines_test.cpp.o.d"
  "/root/repo/tests/integration/dg_adversarial_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/dg_adversarial_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/dg_adversarial_test.cpp.o.d"
  "/root/repo/tests/integration/dg_basic_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/dg_basic_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/dg_basic_test.cpp.o.d"
  "/root/repo/tests/integration/dg_recovery_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/dg_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/dg_recovery_test.cpp.o.d"
  "/root/repo/tests/integration/extreme_conditions_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/extreme_conditions_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/extreme_conditions_test.cpp.o.d"
  "/root/repo/tests/integration/features_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/features_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/features_test.cpp.o.d"
  "/root/repo/tests/integration/scale_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/scale_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/scale_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/optrec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
