file(REMOVE_RECURSE
  "CMakeFiles/storage_tests.dir/storage/storage_test.cpp.o"
  "CMakeFiles/storage_tests.dir/storage/storage_test.cpp.o.d"
  "storage_tests"
  "storage_tests.pdb"
  "storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
