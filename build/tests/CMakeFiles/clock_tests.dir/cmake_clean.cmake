file(REMOVE_RECURSE
  "CMakeFiles/clock_tests.dir/clocks/diff_codec_test.cpp.o"
  "CMakeFiles/clock_tests.dir/clocks/diff_codec_test.cpp.o.d"
  "CMakeFiles/clock_tests.dir/clocks/ftvc_property_test.cpp.o"
  "CMakeFiles/clock_tests.dir/clocks/ftvc_property_test.cpp.o.d"
  "CMakeFiles/clock_tests.dir/clocks/ftvc_test.cpp.o"
  "CMakeFiles/clock_tests.dir/clocks/ftvc_test.cpp.o.d"
  "CMakeFiles/clock_tests.dir/clocks/vector_clock_test.cpp.o"
  "CMakeFiles/clock_tests.dir/clocks/vector_clock_test.cpp.o.d"
  "CMakeFiles/clock_tests.dir/history/history_property_test.cpp.o"
  "CMakeFiles/clock_tests.dir/history/history_property_test.cpp.o.d"
  "CMakeFiles/clock_tests.dir/history/history_test.cpp.o"
  "CMakeFiles/clock_tests.dir/history/history_test.cpp.o.d"
  "clock_tests"
  "clock_tests.pdb"
  "clock_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
