# Empty dependencies file for clock_tests.
# This may be replaced when dependencies are built.
