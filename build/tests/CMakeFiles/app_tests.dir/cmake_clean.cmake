file(REMOVE_RECURSE
  "CMakeFiles/app_tests.dir/app/apps_test.cpp.o"
  "CMakeFiles/app_tests.dir/app/apps_test.cpp.o.d"
  "app_tests"
  "app_tests.pdb"
  "app_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
