file(REMOVE_RECURSE
  "CMakeFiles/scenario_tests.dir/scenario/figure1_test.cpp.o"
  "CMakeFiles/scenario_tests.dir/scenario/figure1_test.cpp.o.d"
  "CMakeFiles/scenario_tests.dir/scenario/figure5_test.cpp.o"
  "CMakeFiles/scenario_tests.dir/scenario/figure5_test.cpp.o.d"
  "scenario_tests"
  "scenario_tests.pdb"
  "scenario_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
