
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/app.cpp" "src/CMakeFiles/optrec.dir/app/app.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/app/app.cpp.o.d"
  "/root/repo/src/app/bank_app.cpp" "src/CMakeFiles/optrec.dir/app/bank_app.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/app/bank_app.cpp.o.d"
  "/root/repo/src/app/counter_app.cpp" "src/CMakeFiles/optrec.dir/app/counter_app.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/app/counter_app.cpp.o.d"
  "/root/repo/src/app/gossip_app.cpp" "src/CMakeFiles/optrec.dir/app/gossip_app.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/app/gossip_app.cpp.o.d"
  "/root/repo/src/app/pingpong_app.cpp" "src/CMakeFiles/optrec.dir/app/pingpong_app.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/app/pingpong_app.cpp.o.d"
  "/root/repo/src/app/workload.cpp" "src/CMakeFiles/optrec.dir/app/workload.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/app/workload.cpp.o.d"
  "/root/repo/src/baselines/cascading_process.cpp" "src/CMakeFiles/optrec.dir/baselines/cascading_process.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/baselines/cascading_process.cpp.o.d"
  "/root/repo/src/baselines/coordinated_process.cpp" "src/CMakeFiles/optrec.dir/baselines/coordinated_process.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/baselines/coordinated_process.cpp.o.d"
  "/root/repo/src/baselines/pessimistic_process.cpp" "src/CMakeFiles/optrec.dir/baselines/pessimistic_process.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/baselines/pessimistic_process.cpp.o.d"
  "/root/repo/src/baselines/peterson_kearns_process.cpp" "src/CMakeFiles/optrec.dir/baselines/peterson_kearns_process.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/baselines/peterson_kearns_process.cpp.o.d"
  "/root/repo/src/baselines/plain_process.cpp" "src/CMakeFiles/optrec.dir/baselines/plain_process.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/baselines/plain_process.cpp.o.d"
  "/root/repo/src/baselines/sender_based_process.cpp" "src/CMakeFiles/optrec.dir/baselines/sender_based_process.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/baselines/sender_based_process.cpp.o.d"
  "/root/repo/src/clocks/diff_codec.cpp" "src/CMakeFiles/optrec.dir/clocks/diff_codec.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/clocks/diff_codec.cpp.o.d"
  "/root/repo/src/clocks/ftvc.cpp" "src/CMakeFiles/optrec.dir/clocks/ftvc.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/clocks/ftvc.cpp.o.d"
  "/root/repo/src/clocks/vector_clock.cpp" "src/CMakeFiles/optrec.dir/clocks/vector_clock.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/clocks/vector_clock.cpp.o.d"
  "/root/repo/src/core/dg_process.cpp" "src/CMakeFiles/optrec.dir/core/dg_process.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/core/dg_process.cpp.o.d"
  "/root/repo/src/core/garbage_collector.cpp" "src/CMakeFiles/optrec.dir/core/garbage_collector.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/core/garbage_collector.cpp.o.d"
  "/root/repo/src/core/output_commit.cpp" "src/CMakeFiles/optrec.dir/core/output_commit.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/core/output_commit.cpp.o.d"
  "/root/repo/src/core/retransmitter.cpp" "src/CMakeFiles/optrec.dir/core/retransmitter.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/core/retransmitter.cpp.o.d"
  "/root/repo/src/detect/predicate_detector.cpp" "src/CMakeFiles/optrec.dir/detect/predicate_detector.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/detect/predicate_detector.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/optrec.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/failure_plan.cpp" "src/CMakeFiles/optrec.dir/harness/failure_plan.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/harness/failure_plan.cpp.o.d"
  "/root/repo/src/harness/metrics.cpp" "src/CMakeFiles/optrec.dir/harness/metrics.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/harness/metrics.cpp.o.d"
  "/root/repo/src/harness/scenario.cpp" "src/CMakeFiles/optrec.dir/harness/scenario.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/harness/scenario.cpp.o.d"
  "/root/repo/src/harness/table_printer.cpp" "src/CMakeFiles/optrec.dir/harness/table_printer.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/harness/table_printer.cpp.o.d"
  "/root/repo/src/history/history.cpp" "src/CMakeFiles/optrec.dir/history/history.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/history/history.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/optrec.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/net/message.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/optrec.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/net/network.cpp.o.d"
  "/root/repo/src/runtime/process_base.cpp" "src/CMakeFiles/optrec.dir/runtime/process_base.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/runtime/process_base.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/optrec.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/optrec.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/storage/checkpoint_store.cpp" "src/CMakeFiles/optrec.dir/storage/checkpoint_store.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/storage/checkpoint_store.cpp.o.d"
  "/root/repo/src/storage/message_log.cpp" "src/CMakeFiles/optrec.dir/storage/message_log.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/storage/message_log.cpp.o.d"
  "/root/repo/src/storage/stable_storage.cpp" "src/CMakeFiles/optrec.dir/storage/stable_storage.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/storage/stable_storage.cpp.o.d"
  "/root/repo/src/truth/causality_oracle.cpp" "src/CMakeFiles/optrec.dir/truth/causality_oracle.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/truth/causality_oracle.cpp.o.d"
  "/root/repo/src/truth/recovery_line_oracle.cpp" "src/CMakeFiles/optrec.dir/truth/recovery_line_oracle.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/truth/recovery_line_oracle.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/optrec.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/optrec.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/optrec.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/serialization.cpp" "src/CMakeFiles/optrec.dir/util/serialization.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/util/serialization.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/optrec.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/optrec.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
