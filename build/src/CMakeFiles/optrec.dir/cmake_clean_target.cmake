file(REMOVE_RECURSE
  "liboptrec.a"
)
