# Empty compiler generated dependencies file for optrec.
# This may be replaced when dependencies are built.
