# Empty dependencies file for optrec_sim.
# This may be replaced when dependencies are built.
