file(REMOVE_RECURSE
  "CMakeFiles/optrec_sim.dir/tools/optrec_sim.cpp.o"
  "CMakeFiles/optrec_sim.dir/tools/optrec_sim.cpp.o.d"
  "optrec_sim"
  "optrec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optrec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
