file(REMOVE_RECURSE
  "CMakeFiles/predicate_watch.dir/predicate_watch.cpp.o"
  "CMakeFiles/predicate_watch.dir/predicate_watch.cpp.o.d"
  "predicate_watch"
  "predicate_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
