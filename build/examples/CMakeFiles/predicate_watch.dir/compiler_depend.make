# Empty compiler generated dependencies file for predicate_watch.
# This may be replaced when dependencies are built.
