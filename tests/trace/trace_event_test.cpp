// Unit tests for the TraceEvent record and the TraceRecorder.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/trace/trace_event.h"

namespace optrec {
namespace {

TEST(TraceEventTypeTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(TraceEventType::kGc); ++i) {
    const auto type = static_cast<TraceEventType>(i);
    const char* name = trace_event_type_name(type);
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(trace_event_type_from_name(name), type)
        << "round-trip failed for '" << name << "'";
  }
}

TEST(TraceEventTypeTest, KnownWireNames) {
  // These names are the JSONL wire format; changing them breaks stored
  // traces, so pin them.
  EXPECT_STREQ(trace_event_type_name(TraceEventType::kSend), "send");
  EXPECT_STREQ(trace_event_type_name(TraceEventType::kDiscardObsolete),
               "discard_obsolete");
  EXPECT_STREQ(trace_event_type_name(TraceEventType::kTokenBroadcast),
               "token_broadcast");
  EXPECT_STREQ(trace_event_type_name(TraceEventType::kGc), "gc");
}

TEST(TraceEventTypeTest, UnknownNameThrows) {
  EXPECT_THROW(trace_event_type_from_name("no-such-event"),
               std::invalid_argument);
}

TEST(TraceRecorderTest, StampsSequenceInEmitOrder) {
  TraceRecorder rec;
  EXPECT_TRUE(rec.empty());
  for (int i = 0; i < 3; ++i) {
    TraceEvent e;
    e.type = TraceEventType::kDeliver;
    e.pid = 1;
    e.seq = 999;  // recorder must overwrite
    rec.emit(std::move(e));
  }
  ASSERT_EQ(rec.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.events()[i].seq, i);
  }
}

TEST(TraceRecorderTest, TakeMovesAndLeavesEmpty) {
  TraceRecorder rec;
  rec.emit(TraceEvent{});
  const auto events = rec.take();
  EXPECT_EQ(events.size(), 1u);
  EXPECT_TRUE(rec.empty());
}

TEST(TraceEventTest, EqualityCoversAllFields) {
  TraceEvent a;
  a.type = TraceEventType::kRollback;
  a.pid = 2;
  a.clock = {3, 17};
  a.mclock = {{0, 1}, {3, 17}};
  TraceEvent b = a;
  EXPECT_EQ(a, b);
  b.mclock[1].ts = 18;
  EXPECT_NE(a, b);
  b = a;
  b.detail = 1;
  EXPECT_NE(a, b);
}

TEST(TraceEventTest, DescribeMentionsTypeAndProcess) {
  TraceEvent e;
  e.type = TraceEventType::kCrash;
  e.pid = 3;
  const std::string text = e.describe();
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("P3"), std::string::npos);
}

}  // namespace
}  // namespace optrec
