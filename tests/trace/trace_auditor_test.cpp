// Trace auditor tests.
//
// Positive direction: seeded Damani-Garg multi-crash runs must audit clean,
// and the counters the auditor recomputes from the trace must agree with
// the Metrics the protocol counted live. Negative direction: the cascading
// baseline must FAIL the <=1-rollback budget (that asymmetry is the whole
// point of Table 1), and hand-built traces must trip each individual check.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/trace/trace_auditor.h"

namespace optrec {
namespace {

ScenarioConfig base_config(ProtocolKind protocol, std::uint64_t seed,
                           std::size_t n, std::size_t crashes) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.n = n;
  config.seed = seed;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.enable_oracle = false;
  config.enable_trace = true;
  Rng rng(seed * 977 + 3);
  config.failures =
      FailurePlan::random(rng, n, crashes, millis(20), millis(200));
  return config;
}

void expect_counters_match(const AuditReport& report, const Metrics& m) {
  EXPECT_EQ(report.sends, m.app_messages_sent);
  EXPECT_EQ(report.deliveries, m.messages_delivered);
  EXPECT_EQ(report.replays, m.messages_replayed);
  EXPECT_EQ(report.obsolete_discards, m.messages_discarded_obsolete);
  EXPECT_EQ(report.duplicate_discards, m.messages_discarded_duplicate);
  EXPECT_EQ(report.postponements, m.messages_postponed);
  EXPECT_EQ(report.crashes, m.crashes);
  EXPECT_EQ(report.restarts, m.restarts);
  EXPECT_EQ(report.rollbacks, m.rollbacks);
  EXPECT_EQ(report.tokens_processed, m.tokens_processed);
  EXPECT_EQ(report.checkpoints, m.checkpoints_taken);
  EXPECT_EQ(report.max_rollbacks_per_process_per_failure,
            m.max_rollbacks_per_process_per_failure());
}

TEST(TraceAuditorDgTest, MultiCrashRunAuditsClean) {
  for (const std::uint64_t seed : {7u, 11u, 23u}) {
    const ScenarioConfig config =
        base_config(ProtocolKind::kDamaniGarg, seed, 4, 2);
    const ExperimentResult result = run_experiment(config);
    ASSERT_TRUE(result.quiesced);
    ASSERT_GE(result.metrics.crashes, 1u);

    const AuditReport report = audit_trace(result.trace);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
    EXPECT_LE(report.max_rollbacks_per_process_per_failure, 1u)
        << "Damani-Garg exceeded the paper's rollback budget";
    expect_counters_match(report, result.metrics);
  }
}

TEST(TraceAuditorDgTest, FullFeatureRunAuditsClean) {
  // Retransmission + stability/output-commit + GC light up every event type.
  ScenarioConfig config = base_config(ProtocolKind::kDamaniGarg, 13, 5, 3);
  config.process.retransmit_on_failure = true;
  config.process.enable_stability_tracking = true;
  config.process.enable_gc = true;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.quiesced);

  const AuditReport report = audit_trace(result.trace);
  EXPECT_TRUE(report.ok()) << report.summary();
  expect_counters_match(report, result.metrics);
}

TEST(TraceAuditorBaselineTest, CascadingFailsRollbackBudget) {
  // FIFO channels + deep dependency chains + two crashes reliably produce
  // the Strom-Yemini domino effect at this seed.
  ScenarioConfig config = base_config(ProtocolKind::kCascading, 1, 6, 2);
  config.network.fifo = true;
  config.workload.depth = 64;
  const ExperimentResult result = run_experiment(config);

  const AuditReport report = audit_trace(result.trace);
  EXPECT_FALSE(report.ok())
      << "expected the cascading baseline to violate the rollback budget";
  EXPECT_GT(report.max_rollbacks_per_process_per_failure, 1u);
  bool saw_budget_violation = false;
  for (const std::string& v : report.violations) {
    if (v.find("rollback budget exceeded") != std::string::npos) {
      saw_budget_violation = true;
    }
  }
  EXPECT_TRUE(saw_budget_violation);
  // The live metrics agree with the trace about how bad it was.
  EXPECT_EQ(report.max_rollbacks_per_process_per_failure,
            result.metrics.max_rollbacks_per_process_per_failure());
}

TEST(TraceAuditorBaselineTest, PessimisticNeverRollsBack) {
  const ScenarioConfig config =
      base_config(ProtocolKind::kPessimistic, 7, 4, 2);
  const ExperimentResult result = run_experiment(config);
  const AuditReport report = audit_trace(result.trace);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.rollbacks, 0u);
}

// --- synthetic traces: each invariant check must actually fire ------------

TraceEvent make(TraceEventType type, ProcessId pid, std::uint64_t seq) {
  TraceEvent e;
  e.type = type;
  e.pid = pid;
  e.seq = seq;
  return e;
}

TEST(TraceAuditorSyntheticTest, EmptyTraceIsClean) {
  const AuditReport report = audit_trace({});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.max_rollbacks_per_process_per_failure, 0u);
}

TEST(TraceAuditorSyntheticTest, DetectsRepeatedRollbackForOneFailure) {
  std::vector<TraceEvent> events;
  TraceEvent broadcast = make(TraceEventType::kTokenBroadcast, 0, 0);
  broadcast.ref = {0, 5};
  broadcast.origin = 0;
  events.push_back(broadcast);
  for (std::uint64_t i = 1; i <= 2; ++i) {
    TraceEvent token = make(TraceEventType::kTokenProcess, 1, 2 * i - 1);
    token.peer = 0;
    token.ref = {0, 5};
    token.origin = 0;
    events.push_back(token);
    TraceEvent rollback = make(TraceEventType::kRollback, 1, 2 * i);
    rollback.peer = 0;
    rollback.ref = {0, 5};
    rollback.origin = 0;
    rollback.origin_ver = 0;
    events.push_back(rollback);
  }
  const AuditReport report = audit_trace(events);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.max_rollbacks_per_process_per_failure, 2u);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("rollback budget exceeded"),
            std::string::npos);
}

TEST(TraceAuditorSyntheticTest, DetectsObsoleteDelivery) {
  std::vector<TraceEvent> events;
  // P1 logs a token invalidating P0 states (v0, ts > 3)...
  TraceEvent token = make(TraceEventType::kTokenProcess, 1, 0);
  token.peer = 0;
  token.ref = {0, 3};
  events.push_back(token);
  // ...then delivers a message depending on P0 (v0, ts 7): Lemma 4 broken.
  TraceEvent deliver = make(TraceEventType::kDeliver, 1, 1);
  deliver.peer = 0;
  deliver.msg_id = 9;
  deliver.count = 1;
  deliver.mclock = {{0, 7}, {0, 1}};
  events.push_back(deliver);

  const AuditReport report = audit_trace(events);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("obsolete delivery"), std::string::npos);
}

TEST(TraceAuditorSyntheticTest, DeliveryBeforeTokenIsNotObsolete) {
  // Delivery first, announcement second: the receiver could not have known,
  // so check 2 (obsolete delivery) must NOT fire — but the delivered state
  // is now an orphan, and surviving uncorrected to the end of the trace it
  // trips check 3 instead.
  std::vector<TraceEvent> events;
  TraceEvent deliver = make(TraceEventType::kDeliver, 1, 0);
  deliver.peer = 0;
  deliver.msg_id = 9;
  deliver.count = 1;
  deliver.mclock = {{0, 7}, {0, 1}};
  events.push_back(deliver);
  TraceEvent broadcast = make(TraceEventType::kTokenBroadcast, 0, 1);
  broadcast.ref = {0, 3};
  events.push_back(broadcast);

  const AuditReport report = audit_trace(events);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("orphan state survived"),
            std::string::npos);
}

TEST(TraceAuditorSyntheticTest, RollbackExtinguishesOrphan) {
  // As above, but P1 processes the token and rolls back past the orphaned
  // delivery before the trace ends: all checks green.
  std::vector<TraceEvent> events;
  TraceEvent deliver = make(TraceEventType::kDeliver, 1, 0);
  deliver.peer = 0;
  deliver.msg_id = 9;
  deliver.count = 1;
  deliver.mclock = {{0, 7}, {0, 1}};
  events.push_back(deliver);
  TraceEvent broadcast = make(TraceEventType::kTokenBroadcast, 0, 1);
  broadcast.ref = {0, 3};
  events.push_back(broadcast);
  TraceEvent token = make(TraceEventType::kTokenProcess, 1, 2);
  token.peer = 0;
  token.ref = {0, 3};
  events.push_back(token);
  TraceEvent rollback = make(TraceEventType::kRollback, 1, 3);
  rollback.peer = 0;
  rollback.ref = {0, 3};
  rollback.origin = 0;
  rollback.count = 0;  // nothing survives
  events.push_back(rollback);

  const AuditReport report = audit_trace(events);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(TraceAuditorSyntheticTest, CrashExtinguishesVolatileOrphan) {
  // The orphaned delivery was never logged (crash count = 0 recoverable), so
  // the crash itself removes it.
  std::vector<TraceEvent> events;
  TraceEvent deliver = make(TraceEventType::kDeliver, 1, 0);
  deliver.peer = 0;
  deliver.msg_id = 9;
  deliver.count = 1;
  deliver.mclock = {{0, 7}, {0, 1}};
  events.push_back(deliver);
  TraceEvent broadcast = make(TraceEventType::kTokenBroadcast, 0, 1);
  broadcast.ref = {0, 3};
  events.push_back(broadcast);
  TraceEvent crash = make(TraceEventType::kCrash, 1, 2);
  crash.count = 0;
  events.push_back(crash);
  events.push_back(make(TraceEventType::kRestart, 1, 3));

  const AuditReport report = audit_trace(events);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(TraceAuditorSyntheticTest, DetectsRollbackWithoutToken) {
  TraceEvent rollback = make(TraceEventType::kRollback, 1, 0);
  rollback.peer = 0;  // claims a token from P0 it never processed
  rollback.ref = {0, 3};
  rollback.origin = 0;
  const AuditReport report = audit_trace({rollback});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("rollback without token"),
            std::string::npos);
}

TEST(TraceAuditorSyntheticTest, DetectsUnrecoveredCrashAndStrayRestart) {
  const AuditReport crashed =
      audit_trace({make(TraceEventType::kCrash, 2, 0)});
  ASSERT_EQ(crashed.violations.size(), 1u);
  EXPECT_NE(crashed.violations[0].find("ended the trace crashed"),
            std::string::npos);

  const AuditReport stray =
      audit_trace({make(TraceEventType::kRestart, 2, 0)});
  ASSERT_EQ(stray.violations.size(), 1u);
  EXPECT_NE(stray.violations[0].find("restart without crash"),
            std::string::npos);
}

TEST(TraceAuditorSyntheticTest, SummaryReflectsVerdict) {
  AuditReport report = audit_trace({});
  EXPECT_NE(report.summary().find("audit: OK"), std::string::npos);
  report.violations.push_back("x");
  EXPECT_NE(report.summary().find("audit: VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace optrec
