// Trace sink tests: JSONL lossless round-trip, golden-stable chrome/DOT
// exports, and structural checks on each format.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/harness/experiment.h"
#include "src/trace/trace_sink.h"
#include "src/util/json.h"

namespace optrec {
namespace {

ScenarioConfig traced_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = seed;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 4;
  config.workload.depth = 24;
  config.workload.all_seed = true;
  config.enable_oracle = false;
  config.enable_trace = true;
  Rng rng(seed * 977 + 3);
  config.failures =
      FailurePlan::random(rng, config.n, 2, millis(20), millis(120));
  return config;
}

TEST(TraceJsonlTest, RealRunRoundTripsLosslessly) {
  const ExperimentResult result = run_experiment(traced_config(7));
  ASSERT_FALSE(result.trace.empty());

  std::ostringstream os;
  write_trace_jsonl(os, result.trace);
  std::istringstream is(os.str());
  const auto reread = read_trace_jsonl(is);

  ASSERT_EQ(reread.size(), result.trace.size());
  for (std::size_t i = 0; i < reread.size(); ++i) {
    ASSERT_EQ(reread[i], result.trace[i]) << "event #" << i << " diverged: "
                                          << result.trace[i].describe();
  }
}

TEST(TraceJsonlTest, AllFieldsSurviveRoundTrip) {
  // A synthetic event exercising every field, including values the writer
  // normally omits as defaults.
  TraceEvent e;
  e.seq = 3;
  e.at = micros(1234567);
  e.type = TraceEventType::kRollback;
  e.pid = 2;
  e.clock = {4, 99};
  e.peer = 1;
  e.msg_id = 77;
  e.send_seq = 11;
  e.msg_version = 5;
  e.ref = {3, 42};
  e.origin = 0;
  e.origin_ver = 6;
  e.count = 1000;
  e.detail = 13;
  e.mclock = {{0, 0}, {1, 2}, {4, 99}};

  std::ostringstream os;
  write_trace_jsonl(os, {e, TraceEvent{}});
  std::istringstream is(os.str());
  const auto reread = read_trace_jsonl(is);
  ASSERT_EQ(reread.size(), 2u);
  EXPECT_EQ(reread[0], e);
  EXPECT_EQ(reread[1], TraceEvent{});
}

TEST(TraceJsonlTest, MalformedLineThrows) {
  std::istringstream is("{\"seq\":0,\"t\":0,\"type\":\"send\"\n");
  EXPECT_THROW(read_trace_jsonl(is), std::runtime_error);
  std::istringstream bad_type(
      "{\"seq\":0,\"t\":0,\"type\":\"warp\",\"pid\":0,\"v\":0,\"ts\":0}\n");
  EXPECT_THROW(read_trace_jsonl(bad_type), std::runtime_error);
}

TEST(TraceSinkGoldenTest, IdenticalRunsExportByteIdentically) {
  const ExperimentResult a = run_experiment(traced_config(11));
  const ExperimentResult b = run_experiment(traced_config(11));
  ASSERT_EQ(a.trace, b.trace) << "simulation itself is not deterministic";

  std::ostringstream ja, jb, ca, cb, da, db;
  write_trace_jsonl(ja, a.trace);
  write_trace_jsonl(jb, b.trace);
  EXPECT_EQ(ja.str(), jb.str());
  write_trace_chrome(ca, a.trace);
  write_trace_chrome(cb, b.trace);
  EXPECT_EQ(ca.str(), cb.str());
  write_trace_dot(da, a.trace);
  write_trace_dot(db, b.trace);
  EXPECT_EQ(da.str(), db.str());
}

TEST(TraceChromeTest, EmitsValidJsonWithPerProcessTracks) {
  const ExperimentResult result = run_experiment(traced_config(7));
  std::ostringstream os;
  write_trace_chrome(os, result.trace);

  const JsonValue doc = JsonValue::parse(os.str());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->as_array().empty());

  std::size_t name_tracks = 0;
  std::size_t instants = 0;
  std::size_t flows = 0;
  std::size_t downtime = 0;
  for (const JsonValue& ev : events->as_array()) {
    const std::string& ph = ev.find("ph")->as_string();
    if (ph == "M") {
      if (ev.find("name")->as_string() == "thread_name") ++name_tracks;
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "s" || ph == "f") {
      ++flows;
    } else if (ph == "X") {
      ++downtime;
    }
  }
  EXPECT_EQ(name_tracks, 4u) << "one named track per process";
  EXPECT_GT(instants, 0u);
  EXPECT_GT(flows, 0u);
  EXPECT_GT(downtime, 0u) << "two crashes should produce downtime slices";
}

TEST(TraceDotTest, SpaceTimeDiagramStructure) {
  const ExperimentResult result = run_experiment(traced_config(7));
  std::ostringstream os;
  write_trace_dot(os, result.trace);
  const std::string dot = os.str();

  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (int p = 0; p < 4; ++p) {
    EXPECT_NE(dot.find("subgraph cluster_p" + std::to_string(p)),
              std::string::npos)
        << "missing lane for P" << p;
  }
  // Crashes (tag 'F') are drawn, and every brace closes.
  EXPECT_NE(dot.find("[label=\"F ("), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(TraceDisabledTest, NoEventsWithoutOptIn) {
  ScenarioConfig config = traced_config(7);
  config.enable_trace = false;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.trace.empty());
}

}  // namespace
}  // namespace optrec
