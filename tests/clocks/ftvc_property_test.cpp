// Randomized FTVC property sweep against an explicit happened-before graph.
//
// A random failure-free-plus-lossless-restart computation is generated (the
// regime where every state is useful, so Theorem 1 applies to all of them);
// each state's FTVC is recorded alongside its node in a ground-truth graph
// (the CausalityOracle reused as a reference structure). Clock comparisons
// must then agree with graph reachability on every sampled pair, and the
// algebraic properties of the entry ordering must hold.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/truth/causality_oracle.h"
#include "src/util/rng.h"

namespace optrec {
namespace {

struct Recorded {
  StateId state;
  Ftvc clock;
};

class FtvcRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtvcRandomSweep, MatchesReachabilityOnRandomComputation) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 2 + rng.uniform(5);  // 2..6 processes

  CausalityOracle graph;
  std::vector<Ftvc> clock;
  std::vector<StateId> head(n);
  std::vector<Recorded> all;
  for (ProcessId pid = 0; pid < n; ++pid) {
    clock.emplace_back(pid, n);
    head[pid] = graph.initial_state(pid);
    all.push_back({head[pid], clock[pid]});
  }

  struct InFlight {
    ProcessId src;
    ProcessId dst;
    Ftvc stamp;
    StateId sender_state;
  };
  std::deque<InFlight> wire;

  const int steps = 200;
  for (int step = 0; step < steps; ++step) {
    const auto choice = rng.uniform(10);
    if (choice < 5) {
      // Send: stamp pre-increment clock (Fig. 2), enqueue.
      const auto src = static_cast<ProcessId>(rng.uniform(n));
      auto dst = static_cast<ProcessId>(rng.uniform(n - 1));
      if (dst >= src) ++dst;
      wire.push_back({src, dst, clock[src], head[src]});
      clock[src].tick_send();
      // Sends advance the sender's state in the reference graph too (we
      // model it as a self-delivery from the same state so program order is
      // captured without a message edge).
      const StateId next = graph.recovery_state(src, head[src]);
      head[src] = next;
      all.push_back({next, clock[src]});
    } else if (choice < 8 && !wire.empty()) {
      // Deliver a random in-flight message (arbitrary reordering).
      const auto pick = rng.uniform(wire.size());
      const InFlight m = wire[pick];
      wire.erase(wire.begin() + static_cast<std::ptrdiff_t>(pick));
      clock[m.dst].merge_deliver(m.stamp);
      head[m.dst] = graph.delivery_state(m.dst, head[m.dst], m.sender_state);
      all.push_back({head[m.dst], clock[m.dst]});
    } else if (choice == 8) {
      // Lossless restart: version++ and a recovery edge; every state stays
      // useful because nothing was lost.
      const auto pid = static_cast<ProcessId>(rng.uniform(n));
      clock[pid].on_restart();
      head[pid] = graph.recovery_state(pid, head[pid]);
      all.push_back({head[pid], clock[pid]});
    } else {
      // Local rollback-style tick (ts++ without version change).
      const auto pid = static_cast<ProcessId>(rng.uniform(n));
      clock[pid].on_rollback();
      head[pid] = graph.recovery_state(pid, head[pid]);
      all.push_back({head[pid], clock[pid]});
    }
  }

  // Theorem 1 on sampled pairs.
  Rng pick(seed ^ 0x5555);
  for (int trial = 0; trial < 500; ++trial) {
    const Recorded& a = all[pick.uniform(all.size())];
    const Recorded& b = all[pick.uniform(all.size())];
    if (a.state == b.state) continue;
    EXPECT_EQ(graph.happens_before(a.state, b.state),
              a.clock.less_than(b.clock))
        << a.clock.to_string() << " vs " << b.clock.to_string();
  }

  // Algebraic sanity on sampled clocks: the order is a strict partial order.
  for (int trial = 0; trial < 100; ++trial) {
    const Ftvc& a = all[pick.uniform(all.size())].clock;
    const Ftvc& b = all[pick.uniform(all.size())].clock;
    const Ftvc& c = all[pick.uniform(all.size())].clock;
    EXPECT_FALSE(a.less_than(a));
    if (a.less_than(b) && b.less_than(c)) {
      EXPECT_TRUE(a.less_than(c)) << "transitivity";
    }
    if (a.less_than(b)) {
      EXPECT_FALSE(b.less_than(a)) << "antisymmetry";
    }
    // Round-trip stability.
    Writer w;
    a.encode(w);
    Reader r(w.buffer());
    EXPECT_EQ(Ftvc::decode(r), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtvcRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace optrec
