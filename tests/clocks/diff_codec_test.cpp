// Tests for the differential FTVC codec (the paper's §7 piggyback-reduction
// direction): exact reconstruction, size savings, invalidation semantics,
// and a randomized round-trip sweep.
#include "src/clocks/diff_codec.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

TEST(DiffCodecTest, FirstMessageCarriesFullClock) {
  DiffFtvcEncoder enc(3);
  DiffFtvcDecoder dec(3);
  Ftvc clock(0, 3);
  const Bytes wire = enc.encode_for(1, clock);
  EXPECT_EQ(dec.decode_from(0, wire), clock);
}

TEST(DiffCodecTest, UnchangedClockCostsAlmostNothing) {
  DiffFtvcEncoder enc(8);
  Ftvc clock(0, 8);
  const Bytes full = enc.encode_for(1, clock);
  const Bytes diff = enc.encode_for(1, clock);  // nothing changed
  EXPECT_LT(diff.size(), full.size() / 2);
  EXPECT_LE(diff.size(), 5u);  // tag + zero count
}

TEST(DiffCodecTest, DiffAppliesOnTopOfBase) {
  DiffFtvcEncoder enc(4);
  DiffFtvcDecoder dec(4);
  Ftvc clock(2, 4);
  ASSERT_EQ(dec.decode_from(2, enc.encode_for(0, clock)), clock);
  clock.tick_send();
  clock.tick_send();
  const Bytes wire = enc.encode_for(0, clock);
  EXPECT_EQ(dec.decode_from(2, wire), clock);
}

TEST(DiffCodecTest, PerDestinationCachesAreIndependent) {
  DiffFtvcEncoder enc(3);
  DiffFtvcDecoder dec_b(3), dec_c(3);
  Ftvc clock(0, 3);
  // Warm destination 1 only.
  dec_b.decode_from(0, enc.encode_for(1, clock));
  clock.tick_send();
  // Destination 2's first message must still be a full clock.
  const Bytes to_c = enc.encode_for(2, clock);
  EXPECT_EQ(dec_c.decode_from(0, to_c), clock);
  // And destination 1 gets a diff that still reconstructs exactly.
  EXPECT_EQ(dec_b.decode_from(0, enc.encode_for(1, clock)), clock);
}

TEST(DiffCodecTest, InvalidateForcesFullClock) {
  DiffFtvcEncoder enc(3);
  DiffFtvcDecoder dec(3);
  Ftvc clock(0, 3);
  dec.decode_from(0, enc.encode_for(1, clock));
  enc.invalidate(1);       // e.g. the sender rolled back
  dec.reset(0);            // receiver learned of the incarnation change
  clock.on_restart();
  const Bytes wire = enc.encode_for(1, clock);
  EXPECT_EQ(dec.decode_from(0, wire), clock) << "full clock after reset";
}

TEST(DiffCodecTest, DiffWithoutBaseThrows) {
  DiffFtvcEncoder enc(3);
  DiffFtvcDecoder dec(3);
  Ftvc clock(0, 3);
  enc.encode_for(1, clock);  // warms the ENCODER only
  clock.tick_send();
  const Bytes diff = enc.encode_for(1, clock);
  EXPECT_THROW(dec.decode_from(0, diff), DecodeError);
}

TEST(DiffCodecTest, VersionChangesTravelInDiffs) {
  DiffFtvcEncoder enc(3);
  DiffFtvcDecoder dec(3);
  Ftvc clock(1, 3);
  dec.decode_from(1, enc.encode_for(0, clock));
  clock.on_restart();  // (1,0): a version bump is just a changed entry
  EXPECT_EQ(dec.decode_from(1, enc.encode_for(0, clock)), clock);
}

// ---- edge cases hit by the wire codec (regression tests) -----------------

TEST(DiffCodecTest, EmptyClockRoundTripsFullAndDiff) {
  // A baseline message with no piggyback carries a default (size-0) clock;
  // the codec must round-trip it on both the full and the diff path.
  DiffFtvcEncoder enc(3);
  DiffFtvcDecoder dec(3);
  const Ftvc empty;
  Ftvc out = dec.decode_from(0, enc.encode_for(1, empty));
  EXPECT_EQ(out, empty);
  EXPECT_EQ(out.owner(), empty.owner());
  EXPECT_EQ(out.size(), 0u);
  // Second frame takes the diff path (warm cache, zero changed entries).
  out = dec.decode_from(0, enc.encode_for(1, empty));
  EXPECT_EQ(out, empty);
  EXPECT_EQ(out.owner(), empty.owner());
}

TEST(DiffCodecTest, SingleEntryClockRoundTrips) {
  DiffFtvcEncoder enc(1);
  DiffFtvcDecoder dec(1);
  Ftvc clock(0, 1);
  EXPECT_EQ(dec.decode_from(0, enc.encode_for(0, clock)), clock);
  clock.tick_send();
  Ftvc out = dec.decode_from(0, enc.encode_for(0, clock));
  EXPECT_EQ(out, clock);
  EXPECT_EQ(out.owner(), clock.owner());
}

TEST(DiffCodecTest, VersionCountersNearUint32MaxRoundTrip) {
  DiffFtvcEncoder enc(2);
  DiffFtvcDecoder dec(2);
  const std::uint32_t big = 0xffffffffu;
  Ftvc clock = Ftvc::with_entries(
      0, {{big, 7}, {big - 1, 0xffffffffffffffffull}});
  Ftvc out = dec.decode_from(0, enc.encode_for(1, clock));
  EXPECT_EQ(out, clock);
  EXPECT_EQ(out.entry(0).ver, big);
  EXPECT_EQ(out.entry(1).ts, 0xffffffffffffffffull);
  // And across a diff frame: bump only entry 1's version to the max.
  clock = Ftvc::with_entries(0, {{big, 7}, {big, 0}});
  out = dec.decode_from(0, enc.encode_for(1, clock));
  EXPECT_EQ(out, clock);
  EXPECT_EQ(out.entry(1).ver, big);
}

TEST(DiffCodecTest, OwnerSurvivesDiffFrames) {
  // The decoder used to substitute the transport-level sender id for the
  // clock owner; a forwarded/mismatched owner must survive both frame kinds.
  DiffFtvcEncoder enc(3);
  DiffFtvcDecoder dec(3);
  Ftvc clock(2, 3);  // owner 2, but transported under src=0
  Ftvc out = dec.decode_from(0, enc.encode_for(1, clock));
  EXPECT_EQ(out.owner(), 2u);
  clock.tick_send();
  out = dec.decode_from(0, enc.encode_for(1, clock));
  EXPECT_EQ(out.owner(), 2u) << "diff frames must inherit the cached owner";
  EXPECT_EQ(out, clock);
}

TEST(DiffCodecTest, RandomizedRoundTripAndSavings) {
  Rng rng(99);
  const std::size_t n = 6;
  DiffFtvcEncoder enc(n);
  std::vector<DiffFtvcDecoder> decoders(n, DiffFtvcDecoder(n));
  Ftvc clock(0, n);

  std::size_t full_bytes = 0, diff_bytes = 0;
  for (int step = 0; step < 500; ++step) {
    // Random local activity.
    switch (rng.uniform(4)) {
      case 0: clock.tick_send(); break;
      case 1: clock.on_rollback(); break;
      case 2: {
        // Simulate learning about a peer via a merge.
        Ftvc peer(1 + static_cast<ProcessId>(rng.uniform(n - 1)), n);
        for (std::uint64_t k = rng.uniform(5); k-- > 0;) peer.tick_send();
        clock.merge_deliver(peer);
        break;
      }
      default: break;  // quiet step
    }
    // Mostly-pairwise traffic (the codec's favourable regime) with the
    // occasional scattered send; reconstruction must be exact either way.
    const auto dst = rng.chance(0.85)
                         ? ProcessId{1}
                         : 1 + static_cast<ProcessId>(rng.uniform(n - 1));
    const Bytes wire = enc.encode_for(dst, clock);
    diff_bytes += wire.size();
    full_bytes += clock.wire_size();
    ASSERT_EQ(decoders[dst].decode_from(0, wire), clock) << "step " << step;
  }
  EXPECT_LT(diff_bytes, full_bytes)
      << "pairwise-heavy traffic must show a net saving";
}

}  // namespace
}  // namespace optrec
