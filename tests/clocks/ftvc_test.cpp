// Tests for the fault-tolerant vector clock, tracking paper Figure 2 and
// Section 4.1 exactly.
#include "src/clocks/ftvc.h"

#include <gtest/gtest.h>

#include "src/util/serialization.h"

namespace optrec {
namespace {

TEST(FtvcEntryTest, PaperOrdering) {
  // e1 < e2 iff (v1 < v2) or (v1 == v2 and ts1 < ts2).
  EXPECT_LT((FtvcEntry{0, 5}), (FtvcEntry{1, 0}));  // higher version wins
  EXPECT_LT((FtvcEntry{1, 2}), (FtvcEntry{1, 3}));
  EXPECT_FALSE((FtvcEntry{1, 0}) < (FtvcEntry{0, 99}));
  EXPECT_EQ((FtvcEntry{2, 7}), (FtvcEntry{2, 7}));
}

TEST(FtvcTest, InitializationPerFigure2) {
  // "∀j : clock[j].ver = 0; clock[j].ts = 0; clock[i].ts = 1"
  const Ftvc c(1, 3);
  EXPECT_EQ(c.entry(0), (FtvcEntry{0, 0}));
  EXPECT_EQ(c.entry(1), (FtvcEntry{0, 1}));
  EXPECT_EQ(c.entry(2), (FtvcEntry{0, 0}));
}

TEST(FtvcTest, OwnerOutOfRangeThrows) {
  EXPECT_THROW(Ftvc(3, 3), std::out_of_range);
}

TEST(FtvcTest, SendTicksAfterSnapshot) {
  Ftvc c(0, 2);
  const Ftvc on_wire = c;  // Fig. 2: send(data, clock) THEN clock[i].ts++
  c.tick_send();
  EXPECT_EQ(on_wire.self().ts, 1u);
  EXPECT_EQ(c.self().ts, 2u);
}

TEST(FtvcTest, MergeTakesComponentwiseMaxAndTicks) {
  Ftvc receiver(0, 3);  // [(0,1) (0,0) (0,0)]
  Ftvc sender(1, 3);    // [(0,0) (0,1) (0,0)]
  sender.tick_send();   // ts 2
  receiver.merge_deliver(sender);
  EXPECT_EQ(receiver.entry(0), (FtvcEntry{0, 2}));  // own ts incremented
  EXPECT_EQ(receiver.entry(1), (FtvcEntry{0, 2}));  // max taken
  EXPECT_EQ(receiver.entry(2), (FtvcEntry{0, 0}));
}

TEST(FtvcTest, MergePrefersHigherVersionOverHigherTimestamp) {
  Ftvc receiver(0, 2);
  Ftvc incoming(1, 2);
  // Simulate: incoming process restarted, so entry is (1, 0) while receiver
  // has stale (0, 100) knowledge of it.
  Ftvc stale(1, 2);
  for (int i = 0; i < 99; ++i) stale.tick_send();  // (0,100)
  receiver.merge_deliver(stale);
  EXPECT_EQ(receiver.entry(1).ts, 100u);
  incoming.on_restart();  // (1, 0)
  receiver.merge_deliver(incoming);
  EXPECT_EQ(receiver.entry(1), (FtvcEntry{1, 0}));  // version dominates
}

TEST(FtvcTest, MergeSizeMismatchThrows) {
  Ftvc a(0, 2), b(0, 3);
  EXPECT_THROW(a.merge_deliver(b), std::invalid_argument);
}

TEST(FtvcTest, RestartRule) {
  // "clock[i].ver++ ; clock[i].ts = 0" — requires no lost state.
  Ftvc c(1, 3);
  c.tick_send();
  c.tick_send();
  c.on_restart();
  EXPECT_EQ(c.self(), (FtvcEntry{1, 0}));
  c.on_restart();
  EXPECT_EQ(c.self(), (FtvcEntry{2, 0}));
}

TEST(FtvcTest, RollbackRuleIncrementsTimestampOnly) {
  Ftvc c(2, 3);
  c.on_rollback();
  EXPECT_EQ(c.self(), (FtvcEntry{0, 2}));
}

TEST(FtvcTest, ForceSelfTsJumpsForwardOnly) {
  Ftvc c(0, 2);
  c.force_self_ts(10);
  EXPECT_EQ(c.self().ts, 10u);
  EXPECT_THROW(c.force_self_ts(3), std::invalid_argument);
}

TEST(FtvcTest, StrictDominanceOrdering) {
  Ftvc a(0, 2);
  Ftvc b = a;
  EXPECT_FALSE(a.less_than(b));  // equal
  b.tick_send();
  EXPECT_TRUE(a.less_than(b));
  EXPECT_FALSE(b.less_than(a));
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_TRUE(a.dominated_by(a));
}

TEST(FtvcTest, ConcurrentClocks) {
  Ftvc a(0, 2);
  Ftvc b(1, 2);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
  EXPECT_FALSE(a.less_than(b));
}

TEST(FtvcTest, EncodeDecodeRoundTrip) {
  Ftvc c(1, 4);
  c.tick_send();
  c.on_restart();
  c.tick_send();
  Writer w;
  c.encode(w);
  Reader r(w.buffer());
  const Ftvc back = Ftvc::decode(r);
  EXPECT_EQ(back, c);
  EXPECT_EQ(back.owner(), 1u);
}

TEST(FtvcTest, WireSizeGrowsWithN) {
  EXPECT_LT(Ftvc(0, 2).wire_size(), Ftvc(0, 64).wire_size());
}

TEST(FtvcTest, ToStringMatchesFigureNotation) {
  Ftvc c(1, 3);
  EXPECT_EQ(c.to_string(), "[(0,0) (0,1) (0,0)]");
}

// Reconstruction of the Figure 1 computation's clock values, hand-driven by
// the Fig. 2 rules. P1 fails after s12; P2's s22 becomes an orphan.
TEST(FtvcTest, Figure1Reconstruction) {
  Ftvc p0(0, 3), p1(1, 3), p2(2, 3);

  // s00: P0 sends m to P1.
  const Ftvc m1 = p0;  // carries [(0,1) (0,0) (0,0)]
  p0.tick_send();
  EXPECT_EQ(p0.self().ts, 2u);

  // s11: P1 receives m.
  p1.merge_deliver(m1);
  EXPECT_EQ(p1.to_string(), "[(0,1) (0,2) (0,0)]");

  // s12: P1 sends to P2.
  const Ftvc m2 = p1;
  p1.tick_send();

  // s22: P2 receives — depends on s12.
  p2.merge_deliver(m2);
  const Ftvc s22 = p2;
  EXPECT_EQ(s22.entry(1), (FtvcEntry{0, 2}));

  // P1 fails, restores s11's clock, restarts: r10 self entry is (1,0).
  Ftvc restored(1, 3);
  restored.merge_deliver(m1);  // reconstruct s11 = [(0,1) (0,2) (0,0)]
  restored.on_restart();
  EXPECT_EQ(restored.self(), (FtvcEntry{1, 0}));
  EXPECT_EQ(restored.to_string(), "[(0,1) (1,0) (0,0)]");

  // P2 rolls back (s22 is an orphan), restoring its initial state: r20.
  Ftvc r20(2, 3);
  r20.on_rollback();

  // Section 4.1: r20.c < s22.c even though r20 -/-> s22 — the FTVC order is
  // only meaningful for useful states; s22 is an orphan.
  EXPECT_TRUE(r20.less_than(s22));
}

}  // namespace
}  // namespace optrec
