#include "src/clocks/vector_clock.h"

#include <gtest/gtest.h>

#include "src/util/serialization.h"

namespace optrec {
namespace {

TEST(VectorClockTest, Initialization) {
  const VectorClock c(1, 3);
  EXPECT_EQ(c.component(0), 0u);
  EXPECT_EQ(c.component(1), 1u);
  EXPECT_EQ(c.component(2), 0u);
}

TEST(VectorClockTest, TickAdvancesOwner) {
  VectorClock c(0, 2);
  c.tick();
  EXPECT_EQ(c.component(0), 2u);
  EXPECT_EQ(c.component(1), 0u);
}

TEST(VectorClockTest, MergeDeliver) {
  VectorClock a(0, 2), b(1, 2);
  b.tick();
  a.merge_deliver(b);
  EXPECT_EQ(a.component(0), 2u);
  EXPECT_EQ(a.component(1), 2u);
}

TEST(VectorClockTest, HappenedBeforeDetection) {
  VectorClock a(0, 2);
  VectorClock b(1, 2);
  const VectorClock sent = a;
  a.tick();
  b.merge_deliver(sent);
  EXPECT_TRUE(sent.less_than(b));
  EXPECT_FALSE(b.less_than(sent));
}

TEST(VectorClockTest, Concurrency) {
  const VectorClock a(0, 2);
  const VectorClock b(1, 2);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_FALSE(a.concurrent_with(a));
}

TEST(VectorClockTest, SizeMismatchNeverDominates) {
  const VectorClock a(0, 2);
  const VectorClock b(0, 3);
  EXPECT_FALSE(a.dominated_by(b));
}

TEST(VectorClockTest, EncodeDecode) {
  VectorClock c(2, 4);
  c.tick();
  c.tick();
  Writer w;
  c.encode(w);
  Reader r(w.buffer());
  EXPECT_EQ(VectorClock::decode(r), c);
}

TEST(VectorClockTest, FtvcIsStrictlyLargerOnWire) {
  // The FTVC costs more than a plain clock (versions); the Table-1 bench
  // relies on both being honestly serialized.
  const VectorClock plain(0, 16);
  EXPECT_GT(plain.wire_size(), 0u);
}

}  // namespace
}  // namespace optrec
