// Snapshot/manifest validation and whole-backend recovery: atomic snapshot
// replace, CRC rejection of damaged files, and DurableBackend::recover_into
// rebuilding exactly the durable frontier after a simulated kill -9 —
// including runs that rolled back, reclaimed, and compacted the WAL.
#include <gtest/gtest.h>

#include "src/durable/durable_storage.h"
#include "src/durable/mem_fs.h"
#include "src/durable/snapshot.h"
#include "src/storage/stable_storage.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

Message make_msg(std::uint64_t seq) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = 1;
  m.dst = 0;
  m.send_seq = seq;
  m.clock = Ftvc(1, 3);
  m.payload = Bytes{0xaa, static_cast<std::uint8_t>(seq)};
  return m;
}

Token make_tok(std::uint64_t ts) {
  Token t;
  t.from = 2;
  t.failed.ver = 1;
  t.failed.ts = ts;
  t.origin_pid = 2;
  t.origin_ver = 1;
  return t;
}

Checkpoint make_ckpt(std::uint64_t delivered) {
  Checkpoint c;
  c.version = 0;
  c.delivered_count = delivered;
  c.send_seq = delivered;
  c.clock = Ftvc(0, 3);
  c.history = History(0, 3);
  c.app_state = Bytes{0x01, static_cast<std::uint8_t>(delivered)};
  c.taken_at = static_cast<SimTime>(delivered);
  return c;
}

template <typename T>
Bytes enc(const T& v) {
  Writer w;
  v.encode(w);
  return w.buffer();
}

DurableOptions mem_opts(MemFs& fs, std::uint64_t compact_threshold = 1u
                                                                     << 20) {
  DurableOptions opts;
  opts.dir = "store";
  opts.fs = &fs;
  opts.compact_threshold = compact_threshold;
  return opts;
}

/// The recovered storage must equal the durable view of `expect`: same log
/// window, same tokens, same checkpoint window, same lifetime counters.
void expect_storage_equal(const StableStorage& restored,
                          const StableStorage& expect) {
  ASSERT_EQ(restored.log().base(), expect.log().base());
  ASSERT_EQ(restored.log().total_count(), expect.log().total_count());
  EXPECT_EQ(restored.log().stable_count(), expect.log().total_count())
      << "everything recovered from disk is stable by construction";
  for (std::uint64_t i = restored.log().base();
       i < restored.log().total_count(); ++i) {
    EXPECT_EQ(enc(restored.log().entry(i)), enc(expect.log().entry(i)))
        << "log entry " << i;
  }
  ASSERT_EQ(restored.token_log().size(), expect.token_log().size());
  for (std::size_t i = 0; i < restored.token_log().size(); ++i) {
    EXPECT_EQ(enc(restored.token_log()[i]), enc(expect.token_log()[i]));
  }
  ASSERT_EQ(restored.checkpoints().count(), expect.checkpoints().count());
  for (std::size_t i = 0; i < restored.checkpoints().count(); ++i) {
    EXPECT_EQ(enc(restored.checkpoints().at(i)),
              enc(expect.checkpoints().at(i)));
  }
  EXPECT_EQ(restored.checkpoints().total_appended(),
            expect.checkpoints().total_appended());
}

TEST(Snapshot, WriteReadRoundTrip) {
  MemFs fs;
  fs.mkdirs("store");
  const Checkpoint ck = make_ckpt(5);
  const std::size_t size = write_snapshot(fs, "store/ckpt-0.bin", ck);
  EXPECT_EQ(fs.file_size("store/ckpt-0.bin"), size);
  // Atomic write: fully durable, no temp file left behind.
  EXPECT_EQ(fs.durable_size("store/ckpt-0.bin"), size);
  EXPECT_EQ(fs.list_dir("store").size(), 1u);

  const auto back = read_snapshot(fs, "store/ckpt-0.bin");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(enc(*back), enc(ck));
}

TEST(Snapshot, DamagedFilesAreRejected) {
  MemFs fs;
  fs.mkdirs("store");
  write_snapshot(fs, "store/ckpt-0.bin", make_ckpt(5));

  // Bit flip anywhere -> CRC failure.
  MemFs flipped;
  flipped.mkdirs("store");
  write_snapshot(flipped, "store/ckpt-0.bin", make_ckpt(5));
  flipped.flip_bit("store/ckpt-0.bin", 12, 3);
  EXPECT_FALSE(read_snapshot(flipped, "store/ckpt-0.bin").has_value());

  // Truncation -> rejected, not partially decoded.
  const auto raw = fs.read_file("store/ckpt-0.bin");
  ASSERT_TRUE(raw.has_value());
  Bytes torn(raw->begin(), raw->begin() + raw->size() / 2);
  fs.write_file_atomic("store/ckpt-torn.bin", torn);
  EXPECT_FALSE(read_snapshot(fs, "store/ckpt-torn.bin").has_value());

  // Missing -> nullopt, no throw.
  EXPECT_FALSE(read_snapshot(fs, "store/absent.bin").has_value());
}

TEST(Manifest, EncodeDecodeRoundTripAndCrc) {
  Manifest m;
  m.wal_gen = 3;
  m.wal_committed = 4096;
  m.next_seq = 9;
  m.checkpoint_seqs = {4, 7, 8};
  const Bytes raw = m.encode();

  const auto back = Manifest::decode(raw);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->wal_gen, 3u);
  EXPECT_EQ(back->wal_committed, 4096u);
  EXPECT_EQ(back->next_seq, 9u);
  EXPECT_EQ(back->checkpoint_seqs, (std::vector<std::uint64_t>{4, 7, 8}));

  for (std::size_t i = 0; i < raw.size(); ++i) {
    Bytes damaged = raw;
    damaged[i] ^= 0x10;
    EXPECT_FALSE(Manifest::decode(damaged).has_value())
        << "flip at byte " << i << " accepted";
  }
  EXPECT_FALSE(Manifest::decode(Bytes{}).has_value());
}

TEST(DurableBackend, KillNineRecoversStablePrefixNotVolatileTail) {
  MemFs fs;
  DurableOptions opts = mem_opts(fs);
  DurableBackend backend(opts);
  backend.start_fresh();

  StableStorage live;
  live.attach_sink(&backend);
  live.checkpoints().append(make_ckpt(0));
  for (std::uint64_t i = 0; i < 5; ++i) live.log().append(make_msg(i));
  live.log().flush();
  live.log_token(make_tok(11));
  // Volatile tail: appended after the last flush/token, never hardened.
  live.log().append(make_msg(5));
  live.log().append(make_msg(6));

  // kill -9: no shutdown hook runs. Recover from the power-cut image.
  auto image = fs.crash_image();
  DurableOptions ropts = mem_opts(*image);
  DurableBackend recoverer(ropts);
  StableStorage restored;
  const RecoveryResult r = recoverer.recover_into(restored);
  ASSERT_TRUE(r.warm);
  ASSERT_FALSE(r.corrupt) << r.corrupt_reason;
  EXPECT_EQ(r.recovered_delivered, 5u);
  EXPECT_EQ(r.replayed_messages, 5u);
  EXPECT_EQ(r.replayed_tokens, 1u);
  EXPECT_EQ(r.recovered_checkpoints, 1u);

  // The durable view to compare against: the live run minus its volatile
  // tail (exactly what MessageLog::on_crash would wipe).
  live.attach_sink(nullptr);
  live.on_crash();
  expect_storage_equal(restored, live);
}

TEST(DurableBackend, SynchronousTokenHardensUnflushedMessages) {
  MemFs fs;
  DurableOptions opts = mem_opts(fs);
  DurableBackend backend(opts);
  backend.start_fresh();

  StableStorage live;
  live.attach_sink(&backend);
  live.checkpoints().append(make_ckpt(0));
  live.log().append(make_msg(0));
  live.log().append(make_msg(1));
  live.log_token(make_tok(3));  // no flush() — the token must harden m0, m1

  auto image = fs.crash_image();
  DurableOptions ropts = mem_opts(*image);
  DurableBackend recoverer(ropts);
  StableStorage restored;
  const RecoveryResult r = recoverer.recover_into(restored);
  ASSERT_TRUE(r.warm);
  EXPECT_EQ(r.recovered_delivered, 2u);
  EXPECT_EQ(restored.log().total_count(), 2u);
  EXPECT_EQ(enc(restored.log().entry(0)), enc(make_msg(0)));
  EXPECT_EQ(enc(restored.log().entry(1)), enc(make_msg(1)));
}

TEST(DurableBackend, RollbackReclaimAndCompactionSurviveKillNine) {
  MemFs fs;
  // Tiny threshold so the GC traffic below triggers real compactions.
  DurableOptions opts = mem_opts(fs, /*compact_threshold=*/256);
  DurableBackend backend(opts);
  backend.start_fresh();

  StableStorage live;
  live.attach_sink(&backend);
  live.checkpoints().append(make_ckpt(0));
  for (std::uint64_t i = 0; i < 8; ++i) live.log().append(make_msg(i));
  live.log().flush();
  live.checkpoints().append(make_ckpt(8));
  live.log_token(make_tok(1));

  // Rollback to the newest checkpoint's cursor... (drops nothing here) then
  // append diverging entries, roll back again, GC up to the checkpoint.
  for (std::uint64_t i = 8; i < 12; ++i) live.log().append(make_msg(100 + i));
  live.log().flush();
  live.checkpoints().truncate_after(1);
  live.log().truncate_from(8);
  live.log().reclaim_before(8);
  live.checkpoints().reclaim_before_delivered(8);
  for (std::uint64_t i = 8; i < 10; ++i) live.log().append(make_msg(i));
  live.log().flush();

  EXPECT_GT(backend.stats().compactions, 0u)
      << "threshold was sized to force at least one compaction";

  auto image = fs.crash_image();
  DurableOptions ropts = mem_opts(*image, /*compact_threshold=*/256);
  DurableBackend recoverer(ropts);
  StableStorage restored;
  const RecoveryResult r = recoverer.recover_into(restored);
  ASSERT_TRUE(r.warm);
  ASSERT_FALSE(r.corrupt) << r.corrupt_reason;

  live.attach_sink(nullptr);
  live.on_crash();
  expect_storage_equal(restored, live);
  EXPECT_EQ(restored.log().base(), 8u);
  EXPECT_EQ(restored.log().total_count(), 10u);
}

TEST(DurableBackend, FreshDirectoryIsAColdStart) {
  MemFs fs;
  DurableOptions opts = mem_opts(fs);
  DurableBackend backend(opts);
  backend.start_fresh();  // no checkpoint -> no manifest yet

  DurableBackend recoverer(mem_opts(fs));
  StableStorage restored;
  const RecoveryResult r = recoverer.recover_into(restored);
  EXPECT_FALSE(r.warm);
  EXPECT_FALSE(r.corrupt);
}

TEST(DurableBackend, CorruptCommittedWalRefusesWarmRecovery) {
  MemFs fs;
  DurableOptions opts = mem_opts(fs);
  DurableBackend backend(opts);
  backend.start_fresh();

  StableStorage live;
  live.attach_sink(&backend);
  live.checkpoints().append(make_ckpt(0));
  for (std::uint64_t i = 0; i < 3; ++i) live.log().append(make_msg(i));
  live.log().flush();
  live.checkpoints().append(make_ckpt(3));  // manifest now floors the WAL

  auto image = fs.crash_image();
  const auto manifest = Manifest::decode(
      image->read_file(manifest_path("store")).value());
  ASSERT_TRUE(manifest.has_value());
  ASSERT_GT(manifest->wal_committed, kWalMagicBytes);
  image->flip_bit(wal_path("store", manifest->wal_gen),
                  manifest->wal_committed - 4, 2);

  DurableBackend recoverer(mem_opts(*image));
  StableStorage restored;
  const RecoveryResult r = recoverer.recover_into(restored);
  EXPECT_TRUE(r.corrupt);
  EXPECT_FALSE(r.warm);
  EXPECT_FALSE(r.corrupt_reason.empty());
}

TEST(DurableBackend, MissingSnapshotNamedByManifestRefusesWarmRecovery) {
  MemFs fs;
  DurableOptions opts = mem_opts(fs);
  DurableBackend backend(opts);
  backend.start_fresh();

  StableStorage live;
  live.attach_sink(&backend);
  live.checkpoints().append(make_ckpt(0));

  auto image = fs.crash_image();
  image->remove(checkpoint_path("store", 0));
  DurableBackend recoverer(mem_opts(*image));
  StableStorage restored;
  const RecoveryResult r = recoverer.recover_into(restored);
  EXPECT_TRUE(r.corrupt);
  EXPECT_FALSE(r.warm);
}

TEST(DurableBackend, RecoveryDeletesStrayFilesAndStaysReusable) {
  MemFs fs;
  DurableOptions opts = mem_opts(fs);
  DurableBackend backend(opts);
  backend.start_fresh();

  StableStorage live;
  live.attach_sink(&backend);
  live.checkpoints().append(make_ckpt(0));
  live.log().append(make_msg(0));
  live.log().flush();

  auto image = fs.crash_image();
  image->write_file_atomic("store/ckpt-99.bin", Bytes{1, 2, 3});
  image->write_file_atomic("store/wal-7.log", Bytes{4, 5, 6});

  DurableBackend recoverer(mem_opts(*image));
  StableStorage restored;
  const RecoveryResult r = recoverer.recover_into(restored);
  ASSERT_TRUE(r.warm);
  EXPECT_FALSE(image->exists("store/ckpt-99.bin"));
  EXPECT_FALSE(image->exists("store/wal-7.log"));

  // The backend must be writable right after recovery: keep appending and
  // recover again from the same tree.
  restored.attach_sink(&recoverer);
  restored.log().append(make_msg(1));
  restored.log().flush();
  restored.checkpoints().append(make_ckpt(2));

  DurableBackend again(mem_opts(*image));
  StableStorage second;
  const RecoveryResult r2 = again.recover_into(second);
  ASSERT_TRUE(r2.warm);
  EXPECT_EQ(r2.recovered_delivered, 2u);
  EXPECT_EQ(second.checkpoints().count(), 2u);
}

}  // namespace
}  // namespace optrec
