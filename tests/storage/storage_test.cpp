#include <gtest/gtest.h>

#include "src/storage/checkpoint_store.h"
#include "src/storage/message_log.h"
#include "src/storage/stable_storage.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

Message make_msg(std::uint64_t seq) {
  Message m;
  m.src = 0;
  m.dst = 1;
  m.send_seq = seq;
  m.payload = {static_cast<std::uint8_t>(seq)};
  return m;
}

TEST(MessageLogTest, AppendFlushCrash) {
  MessageLog log;
  log.append(make_msg(0));
  log.append(make_msg(1));
  EXPECT_EQ(log.total_count(), 2u);
  EXPECT_EQ(log.stable_count(), 0u);
  EXPECT_EQ(log.volatile_count(), 2u);

  log.flush();
  EXPECT_EQ(log.stable_count(), 2u);
  log.append(make_msg(2));
  EXPECT_EQ(log.volatile_count(), 1u);

  // Crash: only the unflushed tail dies.
  EXPECT_EQ(log.on_crash(), 1u);
  EXPECT_EQ(log.total_count(), 2u);
  EXPECT_EQ(log.entry(1).send_seq, 1u);
}

TEST(MessageLogTest, FlushIsIdempotent) {
  MessageLog log;
  log.append(make_msg(0));
  log.flush();
  const auto flushes = log.flush_count();
  log.flush();  // nothing new
  EXPECT_EQ(log.flush_count(), flushes);
}

TEST(MessageLogTest, SuffixAndTruncate) {
  MessageLog log;
  for (std::uint64_t i = 0; i < 5; ++i) log.append(make_msg(i));
  log.flush();
  const auto suffix = log.suffix_from(3);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix[0].send_seq, 3u);
  log.truncate_from(3);
  EXPECT_EQ(log.total_count(), 3u);
  EXPECT_EQ(log.stable_count(), 3u);  // stable bound clamped
  EXPECT_THROW(log.entry(3), std::out_of_range);
}

TEST(MessageLogTest, TruncateBeyondEndIsNoop) {
  MessageLog log;
  log.append(make_msg(0));
  log.truncate_from(10);
  EXPECT_EQ(log.total_count(), 1u);
}

TEST(MessageLogTest, ReclaimRespectsStableBoundary) {
  MessageLog log;
  for (std::uint64_t i = 0; i < 6; ++i) log.append(make_msg(i));
  log.flush();
  log.append(make_msg(6));  // volatile
  EXPECT_EQ(log.reclaim_before(4), 4u);
  EXPECT_EQ(log.base(), 4u);
  EXPECT_EQ(log.entry(4).send_seq, 4u);
  EXPECT_THROW(log.entry(3), std::out_of_range);
  // Cannot reclaim past the stable prefix.
  EXPECT_EQ(log.reclaim_before(100), 2u);  // 4,5 are stable; 6 is volatile
  EXPECT_EQ(log.base(), 6u);
}

TEST(MessageLogTest, IndicesSurviveReclaim) {
  MessageLog log;
  for (std::uint64_t i = 0; i < 4; ++i) log.append(make_msg(i));
  log.flush();
  log.reclaim_before(2);
  log.append(make_msg(4));
  EXPECT_EQ(log.total_count(), 5u);
  EXPECT_EQ(log.entry(4).send_seq, 4u);
}

TEST(CheckpointTest, EncodeDecodeRoundTrip) {
  Checkpoint c;
  c.version = 3;
  c.delivered_count = 42;
  c.send_seq = 17;
  c.clock = Ftvc(1, 3);
  c.history = History(1, 3);
  c.app_state = {9, 8, 7};
  c.taken_at = 12345;
  Writer w;
  c.encode(w);
  Reader r(w.buffer());
  const Checkpoint back = Checkpoint::decode(r);
  EXPECT_EQ(back.version, 3u);
  EXPECT_EQ(back.delivered_count, 42u);
  EXPECT_EQ(back.send_seq, 17u);
  EXPECT_EQ(back.clock, c.clock);
  EXPECT_EQ(back.history, c.history);
  EXPECT_EQ(back.app_state, c.app_state);
  EXPECT_EQ(back.taken_at, 12345u);
}

TEST(CheckpointStoreTest, LatestMatchingScansBackwards) {
  CheckpointStore store;
  for (std::uint64_t d : {0, 5, 10, 15}) {
    Checkpoint c;
    c.delivered_count = d;
    store.append(std::move(c));
  }
  const auto idx = store.latest_matching(
      [](const Checkpoint& c) { return c.delivered_count <= 10; });
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(store.at(*idx).delivered_count, 10u);
  EXPECT_FALSE(store
                   .latest_matching([](const Checkpoint& c) {
                     return c.delivered_count > 100;
                   })
                   .has_value());
}

TEST(CheckpointStoreTest, TruncateAfter) {
  CheckpointStore store;
  for (std::uint64_t d : {0, 5, 10}) {
    Checkpoint c;
    c.delivered_count = d;
    store.append(std::move(c));
  }
  store.truncate_after(1);
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.latest().delivered_count, 5u);
  store.truncate_after(5);  // beyond end: no-op
  EXPECT_EQ(store.count(), 2u);
}

TEST(CheckpointStoreTest, ReclaimKeepsNewestCovered) {
  CheckpointStore store;
  for (std::uint64_t d : {0, 5, 10, 15}) {
    Checkpoint c;
    c.delivered_count = d;
    store.append(std::move(c));
  }
  EXPECT_EQ(store.reclaim_before_delivered(12), 2u);
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.at(0).delivered_count, 10u);
  // Never drops the last checkpoint.
  EXPECT_EQ(store.reclaim_before_delivered(1000), 1u);
  EXPECT_EQ(store.count(), 1u);
}

TEST(StableStorageTest, CrashWipesOnlyVolatile) {
  StableStorage storage;
  storage.log().append(make_msg(0));
  storage.log().flush();
  storage.log().append(make_msg(1));
  Token t;
  t.from = 2;
  t.failed = {0, 3};
  storage.log_token(t);

  EXPECT_EQ(storage.on_crash(), 1u);
  EXPECT_EQ(storage.log().total_count(), 1u);
  ASSERT_EQ(storage.token_log().size(), 1u);  // tokens are synchronous
  EXPECT_EQ(storage.token_log()[0].failed.ts, 3u);
}

TEST(StableStorageTest, StableBytesAccounting) {
  StableStorage storage;
  EXPECT_EQ(storage.stable_bytes(), 0u);
  storage.log().append(make_msg(0));
  EXPECT_EQ(storage.stable_bytes(), 0u) << "volatile data is not stable";
  storage.log().flush();
  EXPECT_GT(storage.stable_bytes(), 0u);
}

}  // namespace
}  // namespace optrec
