// WAL unit tests: framing round trips, group-commit buffering, synchronous
// token hardening (Section 6.3), torn-tail truncation vs committed-floor
// corruption, and compaction equivalence — all on the in-memory
// crash-consistent filesystem.
#include <gtest/gtest.h>

#include "src/durable/mem_fs.h"
#include "src/durable/wal.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

constexpr char kPath[] = "store/wal-0.log";

Message make_msg(std::uint64_t seq) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = 1;
  m.dst = 0;
  m.send_seq = seq;
  m.clock = Ftvc(1, 3);
  m.payload = Bytes{0x10, 0x20, static_cast<std::uint8_t>(seq)};
  return m;
}

Token make_tok(std::uint64_t ts) {
  Token t;
  t.from = 2;
  t.failed.ver = 1;
  t.failed.ts = ts;
  t.origin_pid = 2;
  t.origin_ver = 1;
  return t;
}

Bytes enc_msg(const Message& m) {
  Writer w;
  m.encode(w);
  return w.buffer();
}

Bytes enc_tok(const Token& t) {
  Writer w;
  t.encode(w);
  return w.buffer();
}

Bytes wal_bytes(MemFs& fs) {
  const auto raw = fs.read_file(kPath);
  EXPECT_TRUE(raw.has_value());
  return raw.value_or(Bytes{});
}

TEST(DurableWal, RoundTripThroughAllRecordTypes) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  for (std::uint64_t i = 0; i < 4; ++i) wal.append_message(i, make_msg(i));
  wal.commit();
  wal.append_token(make_tok(7));
  wal.append_reclaim(2);
  wal.append_truncate(3);

  const WalReplay replay = replay_wal(wal_bytes(fs), wal.committed_offset());
  ASSERT_FALSE(replay.corrupt) << replay.corrupt_reason;
  EXPECT_EQ(replay.base, 2u);
  ASSERT_EQ(replay.entries.size(), 1u);  // entries [2,3): m2 survives
  EXPECT_EQ(enc_msg(replay.entries[0]), enc_msg(make_msg(2)));
  ASSERT_EQ(replay.tokens.size(), 1u);
  EXPECT_EQ(enc_tok(replay.tokens[0]), enc_tok(make_tok(7)));
  EXPECT_EQ(replay.torn_bytes, 0u);
}

TEST(DurableWal, AppendsBufferUntilGroupCommit) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  const std::uint64_t header = wal.committed_offset();

  wal.append_message(0, make_msg(0));
  wal.append_message(1, make_msg(1));
  EXPECT_GT(wal.buffered_bytes(), 0u);
  EXPECT_EQ(wal.committed_offset(), header);  // nothing on disk yet
  EXPECT_EQ(fs.durable_size(kPath), header);

  EXPECT_EQ(wal.commit(), 2u);
  EXPECT_EQ(wal.buffered_bytes(), 0u);
  EXPECT_GT(wal.committed_offset(), header);
  // One group commit = one append + one sync: everything committed is
  // durable, not merely written.
  EXPECT_EQ(fs.durable_size(kPath), wal.committed_offset());

  const WalReplay replay = replay_wal(wal_bytes(fs), wal.committed_offset());
  ASSERT_FALSE(replay.corrupt);
  EXPECT_EQ(replay.entries.size(), 2u);
}

TEST(DurableWal, SynchronousTokenHardensBufferedMessages) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  wal.append_message(0, make_msg(0));
  wal.append_message(1, make_msg(1));
  wal.append_token(make_tok(3));  // rides the buffered messages to disk

  WalReplay replay = replay_wal(wal_bytes(fs), wal.committed_offset());
  ASSERT_FALSE(replay.corrupt);
  EXPECT_EQ(replay.entries.size(), 2u);  // no holes before the token
  EXPECT_EQ(replay.tokens.size(), 1u);

  // A message appended after the token stays volatile until the next
  // commit; dropping it (simulated crash) must leave the file untouched.
  wal.append_message(2, make_msg(2));
  replay = replay_wal(wal_bytes(fs), wal.committed_offset());
  EXPECT_EQ(replay.entries.size(), 2u);
  wal.drop_buffered();
  EXPECT_EQ(wal.commit(), 0u);
  replay = replay_wal(wal_bytes(fs), wal.committed_offset());
  EXPECT_EQ(replay.entries.size(), 2u);
}

TEST(DurableWal, TruncateRecordBoundsMessagesItRodeWith) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  wal.append_message(0, make_msg(0));
  wal.commit();
  wal.append_message(1, make_msg(1));
  wal.append_message(2, make_msg(2));
  wal.append_truncate(1);  // hardens m1, m2, then discards them

  const WalReplay replay = replay_wal(wal_bytes(fs), wal.committed_offset());
  ASSERT_FALSE(replay.corrupt) << replay.corrupt_reason;
  EXPECT_EQ(replay.base, 0u);
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(enc_msg(replay.entries[0]), enc_msg(make_msg(0)));
}

TEST(DurableWal, TornTailIsTruncatedAtFirstBadRecord) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  wal.append_message(0, make_msg(0));
  wal.append_message(1, make_msg(1));
  wal.commit();
  const std::uint64_t floor = wal.committed_offset();
  wal.append_message(2, make_msg(2));
  wal.commit();

  // Cut the last record in half: a torn group commit past the floor.
  Bytes raw = wal_bytes(fs);
  const std::size_t torn_at = floor + (raw.size() - floor) / 2;
  raw.resize(torn_at);

  const WalReplay replay = replay_wal(raw, floor);
  ASSERT_FALSE(replay.corrupt) << replay.corrupt_reason;
  EXPECT_EQ(replay.entries.size(), 2u);
  EXPECT_EQ(replay.torn_bytes, torn_at - floor);
  EXPECT_EQ(replay.valid_bytes, floor);

  // The same damage BELOW a floor that claims those bytes committed is
  // corruption, not a torn tail.
  const WalReplay strict = replay_wal(raw, raw.size());
  EXPECT_TRUE(strict.corrupt);
}

TEST(DurableWal, BitFlipBelowCommittedFloorIsCorrupt) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  wal.append_message(0, make_msg(0));
  wal.commit();
  const std::uint64_t floor = wal.committed_offset();
  wal.append_message(1, make_msg(1));
  wal.commit();

  // Flip one payload bit inside the FIRST record (committed below `floor`).
  Bytes raw = wal_bytes(fs);
  raw[kWalMagicBytes + 10] ^= 0x04;
  const WalReplay replay = replay_wal(raw, floor);
  EXPECT_TRUE(replay.corrupt);
  EXPECT_NE(replay.corrupt_reason.find("CRC"), std::string::npos)
      << replay.corrupt_reason;

  // The identical flip in the SECOND record (past the floor) is absorbed
  // as a torn tail: recovery keeps the intact prefix.
  Bytes raw2 = wal_bytes(fs);
  raw2[floor + 10] ^= 0x04;
  const WalReplay tolerant = replay_wal(raw2, floor);
  ASSERT_FALSE(tolerant.corrupt) << tolerant.corrupt_reason;
  EXPECT_EQ(tolerant.entries.size(), 1u);
  EXPECT_GT(tolerant.torn_bytes, 0u);
}

TEST(DurableWal, NonContiguousIndexStreamIsCorrupt) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  wal.append_message(0, make_msg(0));
  wal.append_message(2, make_msg(2));  // hole: index 1 never written
  wal.commit();

  const WalReplay replay = replay_wal(wal_bytes(fs), wal.committed_offset());
  EXPECT_TRUE(replay.corrupt);
  EXPECT_NE(replay.corrupt_reason.find("non-contiguous"), std::string::npos);
}

TEST(DurableWal, SkipCrcAblationAcceptsFlippedRecords) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  wal.append_message(0, make_msg(0));
  wal.commit();

  Bytes raw = wal_bytes(fs);
  raw[raw.size() - 1] ^= 0x01;  // corrupt the payload's last byte
  const WalReplay checked = replay_wal(raw, raw.size());
  EXPECT_TRUE(checked.corrupt);

  WalAblations ablations;
  ablations.skip_crc = true;
  const WalReplay unchecked = replay_wal(raw, raw.size(), ablations);
  // The negative control: damage sails through (decode may or may not
  // notice, but the CRC line of defense is provably gone).
  EXPECT_FALSE(unchecked.corrupt && unchecked.corrupt_reason.find("CRC") !=
                                        std::string::npos);
}

TEST(DurableWal, CompactionPreservesReplayedState) {
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, kPath);
  for (std::uint64_t i = 0; i < 6; ++i) wal.append_message(i, make_msg(i));
  wal.commit();
  wal.append_token(make_tok(1));
  wal.append_reclaim(3);
  wal.append_truncate(5);

  const WalReplay before = replay_wal(wal_bytes(fs), wal.committed_offset());
  ASSERT_FALSE(before.corrupt);
  const Bytes compact = encode_compact_wal(before);
  EXPECT_LT(compact.size(), wal_bytes(fs).size());

  const WalReplay after = replay_wal(compact, compact.size());
  ASSERT_FALSE(after.corrupt) << after.corrupt_reason;
  EXPECT_EQ(after.base, before.base);
  ASSERT_EQ(after.entries.size(), before.entries.size());
  for (std::size_t i = 0; i < after.entries.size(); ++i) {
    EXPECT_EQ(enc_msg(after.entries[i]), enc_msg(before.entries[i]));
  }
  ASSERT_EQ(after.tokens.size(), before.tokens.size());
  for (std::size_t i = 0; i < after.tokens.size(); ++i) {
    EXPECT_EQ(enc_tok(after.tokens[i]), enc_tok(before.tokens[i]));
  }
}

TEST(DurableWal, ReopenContinuesAtCommittedBoundary) {
  MemFs fs;
  fs.mkdirs("store");
  std::uint64_t committed = 0;
  {
    WalWriter wal(fs, kPath);
    wal.append_message(0, make_msg(0));
    wal.commit();
    committed = wal.committed_offset();
  }
  WalWriter reopened(fs, kPath);
  EXPECT_EQ(reopened.committed_offset(), committed);
  reopened.append_message(1, make_msg(1));
  reopened.commit();

  const WalReplay replay =
      replay_wal(wal_bytes(fs), reopened.committed_offset());
  ASSERT_FALSE(replay.corrupt);
  EXPECT_EQ(replay.entries.size(), 2u);
}

}  // namespace
}  // namespace optrec
