#include "src/detect/predicate_detector.h"

#include <gtest/gtest.h>

namespace optrec {
namespace {

TEST(PredicateDetectorTest, EmptyIsUndetected) {
  ConjunctivePredicateDetector d(2);
  EXPECT_FALSE(d.detect().detected);
}

TEST(PredicateDetectorTest, ConcurrentCandidatesDetected) {
  ConjunctivePredicateDetector d(2);
  d.observe(0, Ftvc(0, 2));
  d.observe(1, Ftvc(1, 2));
  const auto result = d.detect();
  EXPECT_TRUE(result.detected);
  ASSERT_EQ(result.cut.size(), 2u);
}

TEST(PredicateDetectorTest, OrderedCandidatesAdvance) {
  // P0's predicate held only before it sent to P1; P1's only after the
  // receipt: the two candidate states are causally ordered, no cut exists.
  ConjunctivePredicateDetector d(2);
  Ftvc p0(0, 2), p1(1, 2);
  const Ftvc at_send = p0;
  p0.tick_send();
  p1.merge_deliver(at_send);
  d.observe(0, at_send);
  d.observe(1, p1);
  EXPECT_FALSE(d.detect().detected);
}

TEST(PredicateDetectorTest, LaterCandidateFormsCut) {
  ConjunctivePredicateDetector d(2);
  Ftvc p0(0, 2), p1(1, 2);
  const Ftvc at_send = p0;
  p0.tick_send();
  p1.merge_deliver(at_send);
  d.observe(0, at_send);  // happened-before p1's candidate
  d.observe(1, p1);
  // P0's predicate holds again later, concurrent with p1's candidate.
  p0.tick_send();
  d.observe(0, p0);
  const auto result = d.detect();
  EXPECT_TRUE(result.detected);
  EXPECT_TRUE(result.cut[0].concurrent_with(result.cut[1]));
}

TEST(PredicateDetectorTest, WorksAcrossFailuresViaVersions) {
  // After P1 restarts, its candidates carry version 1; FTVC comparisons
  // still order them correctly against P0's (Theorem 1 in action).
  ConjunctivePredicateDetector d(2);
  Ftvc p0(0, 2), p1(1, 2);
  const Ftvc before_failure = p1;
  p1.on_restart();  // (1,0)

  // P0 hears from the restarted P1.
  const Ftvc from_p1 = p1;
  p1.tick_send();
  p0.merge_deliver(from_p1);

  d.observe(1, before_failure);  // old-version candidate
  d.observe(0, p0);
  // p0 depends on p1 v1; before_failure (v0, ts1) < p0's view? Entry-wise,
  // (0,1) < (1,0): before_failure happened-before p0's candidate, so it is
  // consumed; with a later P1 candidate a cut forms.
  p1.tick_send();
  d.observe(1, p1);
  EXPECT_TRUE(d.detect().detected);
}

TEST(PredicateDetectorTest, ThreeProcessCut) {
  ConjunctivePredicateDetector d(3);
  d.observe(0, Ftvc(0, 3));
  d.observe(1, Ftvc(1, 3));
  EXPECT_FALSE(d.detect().detected) << "P2 has no candidate yet";
  d.observe(2, Ftvc(2, 3));
  EXPECT_TRUE(d.detect().detected);
}

TEST(PredicateDetectorTest, StreamingDetectAfterMiss) {
  ConjunctivePredicateDetector d(2);
  Ftvc p0(0, 2), p1(1, 2);
  const Ftvc sent = p0;
  p0.tick_send();
  p1.merge_deliver(sent);
  d.observe(0, sent);
  d.observe(1, p1);
  EXPECT_FALSE(d.detect().detected);
  // Candidate queues persist; a fresh concurrent P0 observation suffices.
  p0.tick_send();
  d.observe(0, p0);
  EXPECT_TRUE(d.detect().detected);
}

}  // namespace
}  // namespace optrec
