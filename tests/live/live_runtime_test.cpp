// Live-runtime tests: real threads, real time, post-hoc ground truth.
//
// The seeded smoke tests run a 4-process fleet of each protocol with one
// injected crash and validate the run the same way the simulator tests do:
// the causality oracle's consistency check, the trace auditor's invariant
// replay, and an explicit no-double-delivery check over message fates.
// Latency/throughput numbers are not asserted (they are machine-dependent);
// correctness properties are.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/live/live_runtime.h"
#include "src/live/live_transport.h"
#include "src/live/worker_timers.h"
#include "src/trace/trace_auditor.h"
#include "src/util/rng.h"
#include "src/wire/wire_codec.h"

namespace optrec {
namespace {

// ---------------------------------------------------------------- channel

TEST(LiveChannelTest, HoldsFrameUntilNotBefore) {
  LiveClock clock;
  LiveChannel channel;
  Rng rng(1);

  LiveFrame f;
  f.not_before = clock.now() + millis(20);
  channel.push(f);

  // Not ready yet: a short wait must time out.
  EXPECT_FALSE(channel.pop_ready(clock, clock.now() + millis(1), rng));
  // Waiting past the delay must surface it.
  auto popped = channel.pop_ready(clock, clock.now() + millis(100), rng);
  ASSERT_TRUE(popped.has_value());
  EXPECT_GE(clock.now(), f.not_before);
}

TEST(LiveChannelTest, DueControlFrameBeatsWireBacklog) {
  LiveClock clock;
  LiveChannel channel;
  Rng rng(2);

  for (int i = 0; i < 16; ++i) {
    LiveFrame wire;
    wire.kind = LiveFrame::Kind::kWire;
    channel.push(wire);
  }
  LiveFrame crash;
  crash.kind = LiveFrame::Kind::kCrash;
  channel.push(crash);

  auto popped = channel.pop_ready(clock, clock.now() + millis(50), rng);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->kind, LiveFrame::Kind::kCrash);
}

TEST(LiveChannelTest, PickAmongReadyFramesIsNotFifo) {
  LiveClock clock;
  LiveChannel channel;
  Rng rng(3);

  // Push frames tagged by src; popping all of them in push order every time
  // would mean FIFO. With a random ready pick over 32 frames the chance of
  // observing exact push order by accident is 1/32!.
  constexpr ProcessId kFrames = 32;
  for (ProcessId i = 0; i < kFrames; ++i) {
    LiveFrame f;
    f.src = i;
    channel.push(f);
  }
  std::vector<ProcessId> order;
  for (ProcessId i = 0; i < kFrames; ++i) {
    auto popped = channel.pop_ready(clock, clock.now() + millis(50), rng);
    ASSERT_TRUE(popped.has_value());
    order.push_back(popped->src);
  }
  std::vector<ProcessId> fifo(kFrames);
  for (ProcessId i = 0; i < kFrames; ++i) fifo[i] = i;
  EXPECT_NE(order, fifo);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, fifo);  // nothing lost, nothing duplicated
}

// ----------------------------------------------------------------- timers

TEST(WorkerTimersTest, FiresDueTimersInDeadlineOrder) {
  LiveClock clock;
  WorkerTimers timers(clock);
  std::vector<int> fired;
  timers.schedule_after(0, [&] { fired.push_back(1); });
  timers.schedule_after(0, [&] { fired.push_back(2); });
  EXPECT_NE(timers.next_deadline(), kSimTimeMax);
  timers.fire_due();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_TRUE(timers.empty());
  EXPECT_EQ(timers.next_deadline(), kSimTimeMax);
}

TEST(WorkerTimersTest, CancelledTimerNeverFires) {
  LiveClock clock;
  WorkerTimers timers(clock);
  bool fired = false;
  const TimerId id = timers.schedule_after(0, [&] { fired = true; });
  timers.cancel(id);
  EXPECT_EQ(timers.next_deadline(), kSimTimeMax);
  timers.fire_due();
  EXPECT_FALSE(fired);
}

TEST(WorkerTimersTest, CallbackMayScheduleMore) {
  LiveClock clock;
  WorkerTimers timers(clock);
  int count = 0;
  timers.schedule_after(0, [&] {
    ++count;
    timers.schedule_after(0, [&] { ++count; });
  });
  timers.fire_due();  // fires both: the second is due immediately too
  EXPECT_EQ(count, 2);
}

// ------------------------------------------------------------- smoke runs

LiveConfig smoke_config(ProtocolKind protocol, std::uint64_t seed) {
  LiveConfig config;
  config.n = 4;
  config.seed = seed;
  config.protocol = protocol;
  config.workload.intensity = 4;
  config.workload.depth = 24;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(8);
  config.process.checkpoint_interval = millis(30);
  config.enable_oracle = true;
  config.enable_trace = true;
  config.time_cap = seconds(20);
  // One crash while traffic is in full swing.
  config.crashes.push_back({millis(30), 1});
  return config;
}

/// No message may end up delivered in two surviving states: every fate's
/// receiver states must contain at most one that was neither rolled back
/// nor wiped by a crash.
void expect_no_double_delivery(const CausalityOracle& oracle) {
  for (const auto& [msg, fate] : oracle.messages()) {
    int surviving = 0;
    for (StateId s : fate.receiver_states) {
      if (!oracle.was_rolled_back(s) && !oracle.is_lost(s)) ++surviving;
    }
    EXPECT_LE(surviving, 1) << "message " << msg << " survives in "
                            << surviving << " receiver states";
  }
}

void run_smoke(ProtocolKind protocol, std::uint64_t seed) {
  LiveRuntime runtime(smoke_config(protocol, seed));
  const LiveResult result = runtime.run();

  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.metrics.crashes, 1u);
  EXPECT_EQ(result.metrics.restarts, 1u);
  EXPECT_GT(result.metrics.messages_delivered, 0u);
  EXPECT_GT(result.delivery_latency_us.count(), 0u);
  EXPECT_GT(result.metrics.piggyback_bytes, 0u);

  ASSERT_NE(runtime.oracle(), nullptr);
  EXPECT_EQ(runtime.oracle()->check_consistency(), std::vector<std::string>{});
  expect_no_double_delivery(*runtime.oracle());

  ASSERT_NE(runtime.trace(), nullptr);
  const AuditReport report = audit_trace(runtime.trace()->events());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(LiveRuntimeSmokeTest, DamaniGargSurvivesCrash) {
  run_smoke(ProtocolKind::kDamaniGarg, 101);
}

TEST(LiveRuntimeSmokeTest, PessimisticSurvivesCrash) {
  run_smoke(ProtocolKind::kPessimistic, 102);
}

TEST(LiveRuntimeSmokeTest, CoordinatedSurvivesCrash) {
  run_smoke(ProtocolKind::kCoordinated, 103);
}

TEST(LiveRuntimeTest, FailureFreeRunHasNoRecoveryTraffic) {
  LiveConfig config = smoke_config(ProtocolKind::kDamaniGarg, 104);
  config.crashes.clear();
  LiveRuntime runtime(config);
  const LiveResult result = runtime.run();

  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.metrics.crashes, 0u);
  EXPECT_EQ(result.metrics.rollbacks, 0u);
  EXPECT_EQ(result.net.tokens_sent, 0u);
  // Damani-Garg sends no control messages in failure-free runs (Sec. 6.9).
  EXPECT_EQ(result.metrics.control_messages_sent, 0u);
  EXPECT_EQ(runtime.oracle()->check_consistency(),
            std::vector<std::string>{});
}

TEST(LiveRuntimeTest, InjectedDuplicatesAreFiltered) {
  LiveConfig config = smoke_config(ProtocolKind::kDamaniGarg, 105);
  config.faults.duplicate_prob = 0.2;
  LiveRuntime runtime(config);
  const LiveResult result = runtime.run();

  EXPECT_TRUE(result.quiesced);
  EXPECT_GT(result.net.messages_duplicated, 0u);
  EXPECT_GT(result.metrics.messages_discarded_duplicate, 0u);
  EXPECT_EQ(runtime.oracle()->check_consistency(),
            std::vector<std::string>{});
  expect_no_double_delivery(*runtime.oracle());
}

TEST(LiveTransportTest, BroadcastFanoutDeliversToAllPeersOffCallerThread) {
  // Unit test of the sharded broadcast: the caller returns immediately
  // (accounting done synchronously), the fan-out thread does the pushes,
  // and every channel except the announcer's ends up with the token frame.
  LiveClock clock;
  LiveFaultConfig faults;
  faults.min_delay = 0;
  faults.max_delay = 0;
  constexpr std::size_t kN = 6;
  LiveTransport transport(clock, kN, /*seed=*/5, faults);

  struct NullEndpoint : Endpoint {
    bool is_up() const override { return true; }
    void on_message(const Message&) override {}
    void on_token(const Token&) override {}
  };
  NullEndpoint endpoints[kN];
  for (ProcessId pid = 0; pid < kN; ++pid) {
    transport.attach(pid, &endpoints[pid]);
  }

  Token token;
  token.from = 2;
  token.failed = {1, 7};
  transport.broadcast_token(token);

  // tokens_sent is bumped before the handoff, so in-flight is immediately
  // visible even if the fan-out thread has not run yet.
  EXPECT_EQ(transport.stats().tokens_sent, kN - 1);
  Rng rng(9);
  for (ProcessId pid = 0; pid < kN; ++pid) {
    if (pid == token.from) continue;
    auto frame = transport.channel(pid).pop_ready(
        clock, clock.now() + seconds(5), rng);
    ASSERT_TRUE(frame.has_value()) << "no token reached P" << pid;
    EXPECT_TRUE(frame->token);
    const Frame decoded = decode_frame(frame->wire.bytes());
    ASSERT_EQ(decoded.type, FrameType::kToken);
    EXPECT_EQ(decoded.token.from, token.from);
    EXPECT_EQ(decoded.token.failed, token.failed);
    transport.note_delivered_token();
  }
  EXPECT_EQ(transport.tokens_in_flight(), 0u);
  EXPECT_EQ(transport.channel(token.from).size(), 0u);
}

TEST(LiveRuntimeTest, ScriptedPartitionHoldsCrossGroupTrafficUntilHeal) {
  LiveConfig config = smoke_config(ProtocolKind::kDamaniGarg, 107);
  config.crashes.clear();
  // Cut early, while the causal web is still being seeded, so cross-group
  // traffic is guaranteed to be in flight when the partition lands.
  PartitionEvent split;
  split.at = millis(10);
  split.heal_at = millis(180);
  split.groups = {{0, 1}, {2, 3}};
  config.faults.partitions.push_back(split);
  LiveRuntime runtime(config);
  const LiveResult result = runtime.run();

  // The counter workload's causal web crosses the cut, so the run cannot
  // quiesce before the heal — and must still quiesce cleanly after it.
  EXPECT_TRUE(result.quiesced);
  EXPECT_GE(result.wall_time, split.heal_at);
  EXPECT_EQ(runtime.oracle()->check_consistency(),
            std::vector<std::string>{});
  expect_no_double_delivery(*runtime.oracle());
}

TEST(LiveRuntimeTest, CrashDuringPartitionStillRecovers) {
  LiveConfig config = smoke_config(ProtocolKind::kDamaniGarg, 108);
  config.crashes = {{millis(30), 2}};
  PartitionEvent split;
  split.at = millis(10);
  split.heal_at = millis(160);
  split.groups = {{0, 1}, {2, 3}};
  config.faults.partitions.push_back(split);
  LiveRuntime runtime(config);
  const LiveResult result = runtime.run();

  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.metrics.crashes, 1u);
  EXPECT_EQ(result.metrics.restarts, 1u);
  EXPECT_EQ(runtime.oracle()->check_consistency(),
            std::vector<std::string>{});
  expect_no_double_delivery(*runtime.oracle());
  ASSERT_NE(runtime.trace(), nullptr);
  const AuditReport report = audit_trace(runtime.trace()->events());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(LiveRuntimeTest, ReportsTimeCapAsNonQuiescent) {
  LiveConfig config = smoke_config(ProtocolKind::kDamaniGarg, 106);
  config.crashes.clear();
  config.time_cap = millis(1);  // expires before the workload can finish
  LiveRuntime runtime(config);
  const LiveResult result = runtime.run();
  EXPECT_FALSE(result.quiesced);
}

}  // namespace
}  // namespace optrec
