// LiveChannel data-plane hammer: the ring/wheel/doorbell channel under
// real producer concurrency, plus the wheel-routed control-preemption
// property (a crash frame that matures inside the timing wheel must beat
// any backlog of due wire frames).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/util/rng.h"
#include "src/wire/frame_buf.h"

namespace optrec {
namespace {

LiveFrame wire_frame(ProcessId src, SimTime not_before, SimTime sent_at) {
  LiveFrame f;
  f.kind = LiveFrame::Kind::kWire;
  f.src = src;
  f.wire = FramePool::global().wrap({1, 2, 3});
  f.not_before = not_before;
  f.sent_at = sent_at;
  return f;
}

// N producers push a mix of due and delayed frames while the consumer
// pops and side threads read size()/high-water. Every frame must come out
// exactly once, and never before its not_before.
TEST(LiveChannelStressTest, ConcurrentProducersDelayMixLosesNothing) {
  LiveClock clock;
  LiveChannel channel;
  Rng pop_rng(11);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, &clock, p] {
      Rng rng(static_cast<std::uint64_t>(p) + 100);
      for (int i = 0; i < kPerProducer; ++i) {
        const SimTime now = clock.now();
        // ~half due immediately, ~half parked in the wheel briefly.
        const SimTime delay = rng.chance(0.5) ? 0 : rng.uniform(2000);
        channel.push(wire_frame(static_cast<ProcessId>(p), now + delay, now));
      }
    });
  }
  std::thread reader([&channel, &done] {
    std::uint64_t sink = 0;
    while (!done.load(std::memory_order_acquire)) {
      sink += channel.size() + channel.ring_high_water();
    }
    ASSERT_GE(sink, 0u);
  });

  std::vector<int> per_src(kProducers, 0);
  std::size_t popped = 0;
  while (popped < static_cast<std::size_t>(kProducers) * kPerProducer) {
    auto f = channel.pop_ready(clock, clock.now() + millis(200), pop_rng);
    ASSERT_TRUE(f.has_value()) << "timed out with " << popped << " popped";
    ASSERT_LE(f->not_before, clock.now()) << "frame released early";
    ASSERT_LT(f->src, static_cast<ProcessId>(kProducers));
    ASSERT_EQ(f->wire.size(), 3u);
    ++per_src[f->src];
    ++popped;
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(per_src[p], kPerProducer);
  EXPECT_EQ(channel.size(), 0u);
}

// A crash frame that matures through the timing wheel preempts due wire
// traffic the moment it becomes due, even when wire frames keep arriving.
TEST(LiveChannelTest, WheelRoutedCrashPreemptsDueWireBacklog) {
  LiveClock clock;
  LiveChannel channel;
  Rng rng(5);

  const SimTime crash_at = clock.now() + millis(5);
  LiveFrame crash;
  crash.kind = LiveFrame::Kind::kCrash;
  crash.not_before = crash_at;  // parks in the consumer's wheel
  channel.push(crash);
  for (int i = 0; i < 64; ++i) {
    channel.push(wire_frame(1, /*not_before=*/0, clock.now()));
  }

  // Before the crash matures, pops must yield wire frames only. (Guarded:
  // on a badly stalled machine the crash may already be due.)
  auto first = channel.pop_ready(clock, clock.now() + millis(1), rng);
  ASSERT_TRUE(first.has_value());
  std::size_t wire_popped = 0;
  if (first->kind == LiveFrame::Kind::kWire) {
    ++wire_popped;
  } else {
    EXPECT_GE(clock.now(), crash_at) << "crash released before its time";
  }

  // Once due, the crash wins over the whole remaining wire backlog.
  while (clock.now() < crash_at) {
  }
  auto popped = channel.pop_ready(clock, clock.now() + millis(50), rng);
  ASSERT_TRUE(popped.has_value());
  if (wire_popped == 1) {
    EXPECT_EQ(popped->kind, LiveFrame::Kind::kCrash);
    EXPECT_EQ(channel.size(), 63u);
  }
}

}  // namespace
}  // namespace optrec
