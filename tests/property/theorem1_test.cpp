// Theorem 1 validated on live runs: for useful states s, u of a computation
// with failures and rollbacks, s happened-before u iff s.clock < u.clock.
//
// The delivery observer collects (oracle state id, FTVC) pairs from every
// fresh delivery; after quiescence, sampled pairs are checked both ways
// against the ground-truth graph — restricted to useful states, exactly as
// the theorem requires. Lemma 2's converse direction and the Section 4.1
// caveat (the equivalence may FAIL for non-useful states) are probed too.
#include <gtest/gtest.h>

#include <vector>

#include "src/app/counter_app.h"
#include "src/core/dg_process.h"
#include "src/harness/failure_plan.h"
#include "src/truth/causality_oracle.h"

namespace optrec {
namespace {

struct Sample {
  StateId state;
  Ftvc clock;
  ProcessId pid;
};

struct RunResult {
  std::vector<Sample> samples;
  CausalityOracle oracle;
  bool quiesced = false;
};

class Theorem1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Sweep, ClockOrderEquivalentToHappenedBefore) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kN = 4;

  Simulation sim(seed);
  Network net(sim, {});
  Metrics metrics;
  CausalityOracle oracle;

  ProcessConfig pconfig;
  pconfig.flush_interval = millis(15);
  pconfig.checkpoint_interval = millis(80);

  CounterAppConfig app_config;
  app_config.initial_jobs = 5;
  app_config.hops = 32;
  app_config.all_seed = true;

  std::vector<Sample> samples;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  for (ProcessId pid = 0; pid < kN; ++pid) {
    procs.push_back(std::make_unique<DamaniGargProcess>(
        RuntimeEnv(sim, sim, net), pid, kN, std::make_unique<CounterApp>(pid, kN, app_config),
        pconfig, metrics, &oracle));
    procs.back()->set_delivery_observer(
        [&samples](const DamaniGargProcess& p, const Ftvc& delivery_clock) {
          samples.push_back({p.current_state_id(), delivery_clock, p.pid()});
        });
  }
  for (auto& p : procs) {
    sim.schedule_at(0, [&p] { p->start(); });
  }
  // Two crashes so versions, tokens and rollbacks all participate.
  Rng rng(seed * 31 + 5);
  const auto plan =
      FailurePlan::random(rng, kN, 2, millis(20), millis(120));
  for (const auto& crash : plan.crashes) {
    sim.schedule_at(crash.at,
                    [&procs, pid = crash.pid] { procs[pid]->crash(); });
  }
  sim.run(seconds(30));

  // Keep only useful states (the theorem's precondition).
  std::vector<Sample> useful;
  for (const auto& s : samples) {
    if (oracle.is_useful(s.state)) useful.push_back(s);
  }
  ASSERT_GT(useful.size(), 20u) << "workload too small to be meaningful";

  // Deterministic sampling of pairs (all pairs would be O(k^2) BFS calls).
  Rng pick(seed ^ 0xabcdef);
  int ordered_pairs = 0, concurrent_pairs = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const Sample& a = useful[pick.uniform(useful.size())];
    const Sample& b = useful[pick.uniform(useful.size())];
    if (a.state == b.state) continue;
    const bool hb = oracle.happens_before(a.state, b.state);
    const bool lt = a.clock.less_than(b.clock);
    EXPECT_EQ(hb, lt) << "Theorem 1 violated for states " << a.state << " ("
                      << a.clock.to_string() << ") and " << b.state << " ("
                      << b.clock.to_string() << ")";
    if (hb) {
      ++ordered_pairs;
    } else if (!oracle.happens_before(b.state, a.state)) {
      ++concurrent_pairs;
    }
  }
  // The sample must exercise both sides of the equivalence.
  EXPECT_GT(ordered_pairs, 0);
  EXPECT_GT(concurrent_pairs, 0);

  // Same-process useful states are always clock-ordered (Lemma 2 corollary).
  for (std::size_t i = 1; i < useful.size(); ++i) {
    const Sample& prev = useful[i - 1];
    const Sample& cur = useful[i];
    if (prev.pid != cur.pid) continue;
    if (oracle.happens_before(prev.state, cur.state)) {
      EXPECT_TRUE(prev.clock.less_than(cur.clock));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Sweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(Theorem1Caveat, EquivalenceMayFailForNonUsefulStates) {
  // Section 4.1: "the FTVC does not detect the causality for either lost or
  // orphan states" — r20.c < s22.c even though r20 -/-> s22 (Figure 1). The
  // figure-level assertion lives in tests/scenario/figure1_test.cpp; here we
  // check the pure-clock counterexample stands on its own.
  Ftvc p1(1, 3), p2(2, 3);
  const Ftvc from_p1 = p1;  // P1 sends (soon-lost state)
  p1.tick_send();
  p2.merge_deliver(from_p1);  // s22: orphan-to-be
  const Ftvc s22 = p2;

  Ftvc r20(2, 3);  // P2 restores its initial state...
  r20.on_rollback();
  EXPECT_TRUE(r20.less_than(s22));  // ...yet r20 did not happen before s22.
}

}  // namespace
}  // namespace optrec
