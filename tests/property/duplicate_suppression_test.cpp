// Remark-1 property: duplicate suppression under heavy loss with
// retransmission.
//
// With >= 30% transport loss and Remark-1 retransmission enabled, restarted
// processes announce their restored FTVC and peers retransmit exactly the
// messages the failed process may have lost — so the same application
// message can legitimately arrive many times. The receiver's (src,
// src_version, send_seq) duplicate filter must swallow every extra copy:
//
//  P1: no application message is *delivered* twice at a process unless a
//      rollback or restart wiped that process's delivery record in between
//      (a redelivery after rollback is a fresh delivery, not a duplicate);
//  P2: under drop + crash pressure the filter actually fires (the runs
//      exercise the property, not vacuously pass it);
//  P3: the run still quiesces consistently (oracle-clean) — suppression
//      must not starve recovery of the retransmissions it needs.
//
// The explorer's duplicate *injection* path (ScheduleParams.dup_prob) drives
// the same filter from the network side; here the duplicates arise from the
// protocol's own Remark-1 machinery under loss.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "src/explore/explore_case.h"
#include "src/harness/experiment.h"

namespace optrec {
namespace {

struct DupParam {
  std::uint64_t seed;
  double drop_prob;
  std::size_t crash_count;
  double dup_prob;  // explorer-injected duplicates on top of Remark 1
};

std::string param_name(const ::testing::TestParamInfo<DupParam>& info) {
  const auto& p = info.param;
  std::string name = "seed" + std::to_string(p.seed) + "_drop" +
                     std::to_string(static_cast<int>(p.drop_prob * 100)) +
                     "_crashes" + std::to_string(p.crash_count);
  if (p.dup_prob > 0) {
    name += "_dup" + std::to_string(static_cast<int>(p.dup_prob * 100));
  }
  return name;
}

class DuplicateSuppressionSweep : public ::testing::TestWithParam<DupParam> {};

TEST_P(DuplicateSuppressionSweep, NoDoubleDeliveryUnderLossAndRetransmission) {
  const DupParam& p = GetParam();

  ExploreCase c;
  c.scenario.n = 4;
  c.scenario.seed = p.seed;
  c.scenario.workload.kind = WorkloadKind::kCounter;
  c.scenario.workload.intensity = 5;
  c.scenario.workload.depth = 36;
  c.scenario.workload.all_seed = true;
  c.scenario.process.flush_interval = millis(15);
  c.scenario.process.checkpoint_interval = millis(80);
  c.scenario.process.retransmit_on_failure = true;  // Remark 1 on
  Rng plan_rng(p.seed * 6151 + 7);
  c.scenario.failures = FailurePlan::random(plan_rng, c.scenario.n,
                                            p.crash_count, millis(20),
                                            millis(160));
  c.schedule.seed = p.seed ^ 0xabcdef;
  c.schedule.drop_prob = p.drop_prob;  // >= 0.30 in every instantiation
  c.schedule.dup_prob = p.dup_prob;

  const RunOutcome outcome = run_explore_case(c);

  // P3: quiesced, oracle- and auditor-clean.
  ASSERT_TRUE(outcome.quiesced);
  EXPECT_TRUE(outcome.ok()) << outcome.first()->message;

  // P1: scan the trace. A (receiver, src, src_version, send_seq) key may be
  // freshly delivered at most once per "delivery epoch" of the receiver; a
  // rollback or restart at the receiver starts a new epoch for the keys it
  // un-delivered. Counting epochs per process is a sound over-approximation:
  // delivering the same key twice with no rollback/restart in between is a
  // filter failure regardless of which states the wipe touched.
  ExperimentResult replay;  // re-run with the trace captured
  {
    ScenarioConfig cfg = c.scenario;
    cfg.enable_trace = true;
    cfg.enable_oracle = true;
    ScheduleMutator hook(c.schedule);
    cfg.schedule_hook = &hook;
    replay = run_experiment(cfg);
  }
  ASSERT_FALSE(replay.trace.empty());

  std::vector<std::uint64_t> epoch(c.scenario.n, 0);
  std::map<std::tuple<ProcessId, ProcessId, Version, std::uint64_t>,
           std::uint64_t>
      last_epoch;  // key -> epoch of the last fresh delivery
  std::size_t duplicates_filtered = 0;
  for (const TraceEvent& e : replay.trace) {
    switch (e.type) {
      case TraceEventType::kRollback:
      case TraceEventType::kRestart:
        ++epoch[e.pid];
        break;
      case TraceEventType::kDiscardDuplicate:
        ++duplicates_filtered;
        break;
      case TraceEventType::kDeliver: {
        const auto key =
            std::make_tuple(e.pid, e.peer, e.msg_version, e.send_seq);
        const auto it = last_epoch.find(key);
        if (it != last_epoch.end()) {
          EXPECT_LT(it->second, epoch[e.pid])
              << "P" << e.pid << " delivered message (src=P" << e.peer
              << " v" << e.msg_version << " seq" << e.send_seq
              << ") twice with no rollback/restart in between (trace #"
              << e.seq << ")";
        }
        last_epoch[key] = epoch[e.pid];
        break;
      }
      default:
        break;
    }
  }

  // P2: the property is exercised — with crashes + Remark 1 retransmission
  // (or injected duplicates) the filter must have had something to do.
  if (p.crash_count > 0 || p.dup_prob > 0) {
    EXPECT_GT(duplicates_filtered, 0u)
        << "no duplicate ever reached the filter; the sweep is vacuous";
  }
}

INSTANTIATE_TEST_SUITE_P(
    HeavyLoss, DuplicateSuppressionSweep,
    ::testing::Values(DupParam{101, 0.30, 1, 0.0},
                      DupParam{202, 0.35, 2, 0.0},
                      DupParam{303, 0.30, 2, 0.0},
                      DupParam{404, 0.40, 1, 0.10},
                      DupParam{505, 0.30, 2, 0.15}),
    param_name);

}  // namespace
}  // namespace optrec
