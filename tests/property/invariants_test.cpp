// Property-based sweeps: random workloads + random failure plans, checked
// against the omniscient causality oracle. Every seed is a different
// interleaving; the invariants are the paper's theorems.
//
//  I1 (consistency): the surviving global state is consistent.
//  I2 (minimal rollback): <= 1 rollback per process per failure, and the
//     rolled-back set is exactly the oracle's orphan set.
//  I3 (Lemma 4): every message discarded as obsolete is oracle-obsolete, and
//     no obsolete message survives in a useful receiver state.
//  I4 (liveness): the system quiesces with nothing postponed.
#include <gtest/gtest.h>

#include <tuple>

#include "src/harness/experiment.h"

namespace optrec {
namespace {

struct SweepParam {
  std::uint64_t seed;
  WorkloadKind workload;
  std::size_t n;
  std::size_t crash_count;
  bool fifo;
  bool concurrent_crashes;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  WorkloadSpec spec;
  spec.kind = p.workload;
  std::string name = "seed" + std::to_string(p.seed) + "_" + spec.name() +
                     "_n" + std::to_string(p.n) + "_crashes" +
                     std::to_string(p.crash_count);
  if (p.fifo) name += "_fifo";
  if (p.concurrent_crashes) name += "_conc";
  return name;
}

class DgInvariantSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DgInvariantSweep, AllInvariantsHold) {
  const SweepParam& p = GetParam();
  ScenarioConfig config;
  config.n = p.n;
  config.seed = p.seed;
  config.network.fifo = p.fifo;
  config.workload.kind = p.workload;
  config.workload.intensity = 5;
  config.workload.depth = 40;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(15);
  config.process.checkpoint_interval = millis(80);
  Rng rng(p.seed * 7919 + 13);
  config.failures = FailurePlan::random(rng, p.n, p.crash_count, millis(20),
                                        millis(150), p.concurrent_crashes);

  Scenario scenario(config);
  const bool quiesced = scenario.run();
  const CausalityOracle& oracle = *scenario.oracle();
  const Metrics& metrics = scenario.metrics();

  // I4: liveness.
  ASSERT_TRUE(quiesced) << "run did not quiesce";
  EXPECT_EQ(scenario.total_pending(), 0u);

  // I1: consistency of the surviving global state.
  const auto violations = oracle.check_consistency();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);

  // I2: minimal rollback — at most once per process per failure, and only
  // orphans are ever rolled back; no orphan survives.
  EXPECT_LE(metrics.max_rollbacks_per_process_per_failure(), 1u);
  for (StateId s : oracle.rolled_back_states()) {
    EXPECT_TRUE(oracle.is_orphan(s))
        << "non-orphan state " << s << " was rolled back";
  }
  for (ProcessId pid = 0; pid < config.n; ++pid) {
    for (StateId s : oracle.states_of(pid)) {
      if (oracle.is_orphan(s)) {
        EXPECT_TRUE(oracle.was_rolled_back(s))
            << "orphan state " << s << " of P" << pid << " survived";
      }
    }
  }

  // I3: obsolete-message exactness.
  for (const auto& [msg_id, fate] : oracle.messages()) {
    if (fate.discarded) {
      EXPECT_TRUE(oracle.is_message_obsolete(msg_id))
          << "message " << msg_id << " discarded though not obsolete";
    }
    if (oracle.is_message_obsolete(msg_id)) {
      for (StateId r : fate.receiver_states) {
        EXPECT_FALSE(oracle.is_useful(r))
            << "obsolete message " << msg_id << " survives in useful state";
      }
    }
  }
}

std::vector<SweepParam> make_sweep() {
  std::vector<SweepParam> params;
  const WorkloadKind kinds[] = {WorkloadKind::kCounter, WorkloadKind::kBank,
                                WorkloadKind::kGossip};
  std::uint64_t seed = 1;
  for (WorkloadKind kind : kinds) {
    for (std::size_t crashes : {1u, 2u, 4u}) {
      for (std::size_t n : {3u, 5u}) {
        params.push_back({seed++, kind, n, crashes, false, false});
      }
    }
  }
  // FIFO and concurrent-crash corners.
  params.push_back({100, WorkloadKind::kCounter, 4, 2, true, false});
  params.push_back({101, WorkloadKind::kCounter, 4, 3, false, true});
  params.push_back({102, WorkloadKind::kBank, 5, 3, false, true});
  params.push_back({103, WorkloadKind::kGossip, 4, 2, true, true});
  // Heavier failure pressure.
  for (std::uint64_t s = 200; s < 212; ++s) {
    params.push_back({s, WorkloadKind::kCounter, 4, 5, false, false});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomRuns, DgInvariantSweep,
                         ::testing::ValuesIn(make_sweep()), param_name);

// The same sweep with Remark-1 retransmission enabled: the invariants must
// be unaffected by duplicate-generating recovery traffic.
class DgRetransmitSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DgRetransmitSweep, InvariantsHoldWithRetransmission) {
  const SweepParam& p = GetParam();
  ScenarioConfig config;
  config.n = p.n;
  config.seed = p.seed;
  config.workload.kind = p.workload;
  config.workload.intensity = 4;
  config.workload.depth = 32;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(15);
  config.process.retransmit_on_failure = true;
  Rng rng(p.seed * 104729 + 7);
  config.failures =
      FailurePlan::random(rng, p.n, p.crash_count, millis(20), millis(120));

  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  EXPECT_TRUE(scenario.oracle()->check_consistency().empty());
  EXPECT_LE(scenario.metrics().max_rollbacks_per_process_per_failure(), 1u);
}

std::vector<SweepParam> make_retransmit_sweep() {
  std::vector<SweepParam> params;
  for (std::uint64_t s = 300; s < 310; ++s) {
    params.push_back({s, WorkloadKind::kBank, 4, 2, false, false});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RetransmitRuns, DgRetransmitSweep,
                         ::testing::ValuesIn(make_retransmit_sweep()),
                         param_name);

}  // namespace
}  // namespace optrec
