// True kill-9 recovery, end to end: an in-process TcpCluster exercising the
// durable write path, and the real acceptance scenario — optrec_node's
// multi-process --spawn harness SIGKILLing a node and respawning it with
// --recover, which must come back warm from its on-disk WAL + checkpoints.
//
// The exec-based test runs the optrec_node binary (path injected via the
// OPTREC_NODE_BIN compile definition) exactly as a user would.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/tcp/tcp_cluster.h"
#include "src/util/json.h"

namespace optrec {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory, removed when the guard dies.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "optrec-durable-XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

TEST(TcpDurableRecovery, InProcessClusterPersistsDurableState) {
  TempDir tmp;
  TcpClusterConfig config;
  config.n = 4;
  config.nodes = 2;
  config.seed = 13;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.time_cap = seconds(60);
  config.data_dir = (tmp.path / "data").string();

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);

  std::uint64_t fsyncs = 0, snapshots = 0, disk_bytes = 0;
  for (const TcpNodeResult& nr : result.per_node) {
    EXPECT_TRUE(nr.durable.enabled);
    fsyncs += nr.durable.fsyncs;
    snapshots += nr.durable.snapshot_writes;
    disk_bytes += nr.durable.disk_stable_bytes;
  }
  EXPECT_GT(fsyncs, 0u);
  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(disk_bytes, 0u);

  // Every pid left a recoverable store behind: manifest + WAL on disk.
  for (std::size_t node = 0; node < config.nodes; ++node) {
    const fs::path node_dir =
        fs::path(config.data_dir) / ("node-" + std::to_string(node));
    ASSERT_TRUE(fs::exists(node_dir)) << node_dir;
    bool saw_pid_store = false;
    for (const auto& entry : fs::directory_iterator(node_dir)) {
      if (!entry.is_directory()) continue;
      saw_pid_store = true;
      EXPECT_TRUE(fs::exists(entry.path() / "MANIFEST.bin"))
          << entry.path() << " has no manifest";
    }
    EXPECT_TRUE(saw_pid_store) << node_dir << " holds no per-pid stores";
  }
}

#ifdef OPTREC_NODE_BIN
TEST(TcpDurableRecovery, SpawnHarnessKillNineRespawnsWarmFromDisk) {
  TempDir tmp;
  const std::string data_dir = (tmp.path / "data").string();
  const std::string metrics = (tmp.path / "metrics.json").string();
  const std::string log = (tmp.path / "harness.log").string();

  std::ostringstream cmd;
  cmd << OPTREC_NODE_BIN << " --spawn --processes=8 --tcp-nodes=4"
      << " --seed=3 --intensity=10 --depth=600 --retransmit"
      << " --flush-ms=10 --ckpt-ms=50 --kill=1:400:900"
      // Generous cap: sanitizer builds run this fleet ~10x slower.
      << " --time-cap-ms=120000"
      << " --data-dir=" << data_dir << " --metrics-json=" << metrics
      << " >" << log << " 2>&1";
  const int status = std::system(cmd.str().c_str());
  ASSERT_TRUE(WIFEXITED(status));
  if (WEXITSTATUS(status) != 0) {
    std::ifstream in(log);
    std::ostringstream text;
    text << in.rdbuf();
    FAIL() << "harness exited " << WEXITSTATUS(status) << "\n" << text.str();
  }

  // The respawned node 1 wrote its metrics on clean exit; its durable
  // block must show a warm, non-trivial recovery from disk.
  std::ifstream in(metrics + ".node1");
  ASSERT_TRUE(in.good()) << "respawned node wrote no metrics JSON";
  std::ostringstream text;
  text << in.rdbuf();
  const JsonValue root = JsonValue::parse(text.str());
  const JsonValue* durable = root.find("durable");
  ASSERT_NE(durable, nullptr) << text.str();
  EXPECT_GE(durable->u64_or("warm_recovered", 0), 1u)
      << "respawn fell back to a cold crash-announce";
  // Strictly past the initial checkpoint's cursor: recovery used the
  // latest on-disk state, not the version-0 fallback.
  EXPECT_GT(durable->u64_or("recovered_delivered", 0), 0u);
  EXPECT_GT(durable->u64_or("replayed_msgs", 0), 0u);
  EXPECT_GT(durable->u64_or("recovered_checkpoints", 0), 0u);
}
#endif  // OPTREC_NODE_BIN

}  // namespace
}  // namespace optrec
