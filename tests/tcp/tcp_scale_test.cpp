// Fleet-scale TCP integration tests (topology.scale, docs/SCALING.md):
// delta clock piggyback over real connections and hierarchical failure-
// token dissemination, validated by the same shared causality oracle the
// flat-mode cluster tests use. The codec- and overlay-level properties
// live in tests/scale/; these tests prove the TRANSPORT integration — the
// part where encode order, connection lifecycle and relay acks could
// diverge from the models.
#include <gtest/gtest.h>

#include "src/tcp/tcp_cluster.h"
#include "src/trace/trace_auditor.h"

namespace optrec {
namespace {

TcpClusterConfig base_config() {
  TcpClusterConfig config;
  config.n = 8;
  config.nodes = 4;
  config.seed = 11;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.time_cap = seconds(60);
  return config;
}

TEST(TcpScale, DeltaPiggybackFaultFreeDecodesEverythingAndSavesBytes) {
  // Byte savings need clocks wide enough that only a few of the n entries
  // change between consecutive frames of a stream — at n=8 the fixed
  // per-frame overhead (seq, base_seq, checksum) eats the gain, which is
  // exactly why the knob targets fleets. 32 processes is the smallest
  // configuration where the win is unambiguous on every seed.
  TcpClusterConfig config = base_config();
  config.n = 32;
  config.scale.delta_piggyback = true;
  config.enable_oracle = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(cluster.oracle()->check_consistency().empty());
  EXPECT_EQ(result.net.messages_sent, result.net.messages_delivered);
  EXPECT_EQ(result.tcp.protocol_errors, 0u);
  // Every cross-node message went through the codec, and the stateful
  // frames cost less on the wire than their flat equivalents.
  EXPECT_GT(result.tcp.delta_frames_tx, 0u);
  EXPECT_LT(result.tcp.delta_bytes_tx, result.tcp.delta_flat_bytes);
  // A fault-free run never needs a resync.
  EXPECT_EQ(result.tcp.delta_resyncs, 0u);
}

TEST(TcpScale, DeltaPiggybackSurvivesCrashesDropsAndDuplicates) {
  // The hard case for a stateful codec: worker crashes roll clocks back,
  // injected duplicates re-queue the same DeltaSend twice, and drops
  // remove frames BEFORE encoding (sender-side), so the connection stream
  // itself stays gap-free — decode must stay exact throughout.
  TcpClusterConfig config = base_config();
  config.scale.delta_piggyback = true;
  config.process.retransmit_on_failure = true;
  config.faults.duplicate_prob = 0.15;
  config.faults.drop_prob = 0.05;
  config.crashes.push_back({millis(30), 2});
  config.crashes.push_back({millis(60), 5});
  config.enable_oracle = true;
  config.enable_trace = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.metrics.crashes, 2u);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
  const std::vector<std::string> violations =
      cluster.oracle()->check_consistency();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  const AuditReport report = audit_trace(cluster.trace()->events());
  EXPECT_TRUE(report.ok()) << report.summary();
  // At this small n the codec cannot save bytes (see the fault-free test);
  // what matters here is that every frame still decoded exactly — the
  // oracle above — and the accounting is live.
  EXPECT_GT(result.tcp.delta_frames_tx, 0u);
  EXPECT_GT(result.tcp.delta_flat_bytes, 0u);
}

TEST(TcpScale, HierarchicalTokenDisseminationReachesEveryone) {
  // Fanout 2 over 4 nodes: the origin sends 2 relays and interior heads
  // forward — strictly fewer token envelopes than the 3 tracked sends flat
  // mode would make per broadcast, and every process still gets the token
  // (quiescence + oracle prove delivery).
  TcpClusterConfig config = base_config();
  config.scale.token_fanout = 2;
  config.process.retransmit_on_failure = true;
  config.crashes.push_back({millis(30), 2});
  config.crashes.push_back({millis(60), 5});
  config.enable_oracle = true;
  config.enable_trace = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.metrics.crashes, 2u);
  EXPECT_EQ(result.metrics.restarts, 2u);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
  const std::vector<std::string> violations =
      cluster.oracle()->check_consistency();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  const AuditReport report = audit_trace(cluster.trace()->events());
  EXPECT_TRUE(report.ok()) << report.summary();
  // Relays actually carried the broadcasts; every remote process received
  // its copy (logical sends all delivered, nothing stuck unacked).
  EXPECT_GT(result.tcp.relays_tx, 0u);
  EXPECT_GT(result.net.tokens_delivered, 0u);
  EXPECT_EQ(result.net.tokens_sent, result.net.tokens_delivered);
}

TEST(TcpScale, HierarchicalDisseminationSurvivesPartition) {
  // A partition splits the relay tree mid-broadcast: heads inside the far
  // group are unreachable until heal. Retry-until-acked plus the fallback
  // re-split must still cover every node — the run cannot quiesce before
  // every subtree acked.
  TcpClusterConfig config = base_config();
  config.scale.token_fanout = 2;
  config.process.retransmit_on_failure = true;
  config.crashes.push_back({millis(30), 2});
  PartitionEvent part;
  part.at = millis(50);
  part.heal_at = millis(250);
  part.groups = {{0, 1}, {2, 3}};  // node ids
  config.faults.partitions.push_back(part);
  config.enable_oracle = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(cluster.oracle()->check_consistency().empty());
  EXPECT_GT(result.tcp.relays_tx, 0u);
  EXPECT_EQ(result.net.tokens_sent, result.net.tokens_delivered);
}

TEST(TcpScale, DeltaAndHierarchicalComposeUnderFaults) {
  // Both scale features on at once, with every fault class injected: the
  // full ISSUE acceptance scenario at test scale.
  TcpClusterConfig config = base_config();
  config.scale.delta_piggyback = true;
  config.scale.token_fanout = 2;
  config.process.retransmit_on_failure = true;
  config.faults.duplicate_prob = 0.1;
  config.faults.drop_prob = 0.03;
  config.crashes.push_back({millis(30), 2});
  config.crashes.push_back({millis(60), 5});
  config.enable_oracle = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(cluster.oracle()->check_consistency().empty());
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
  EXPECT_GT(result.tcp.delta_frames_tx, 0u);
  EXPECT_GT(result.tcp.relays_tx, 0u);
}

TEST(TcpScale, TunedGcReclaimsStorageOnTheTcpPath) {
  // Aggressive Remark-2 GC wired through TcpClusterConfig.process.gc: the
  // run must stay oracle-clean while actually reclaiming log intervals.
  TcpClusterConfig config = base_config();
  config.workload.depth = 96;
  config.process.enable_stability_tracking = true;
  config.process.enable_gc = true;
  config.process.gc.level = scale::GcLevel::kAggressive;
  config.process.gc.keep_checkpoints = 2;
  config.process.stability_gossip_interval = millis(20);
  config.crashes.push_back({millis(40), 3});
  config.enable_oracle = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(cluster.oracle()->check_consistency().empty());
  EXPECT_GT(result.metrics.gc_log_entries_reclaimed, 0u);
}

}  // namespace
}  // namespace optrec
