// Envelope codec + topology unit tests for the TCP backend.
#include <gtest/gtest.h>

#include "src/tcp/envelope.h"
#include "src/tcp/topology.h"
#include "src/wire/wire_codec.h"

namespace optrec {
namespace {

TEST(Envelope, RoundTripsEveryKind) {
  {
    Envelope e;
    e.kind = EnvelopeKind::kHello;
    e.src_node = 3;
    e.epoch = 0x1122334455667788ull;
    e.cluster = "loopback";
    const Envelope d = decode_envelope(encode_envelope(e));
    EXPECT_EQ(d.kind, EnvelopeKind::kHello);
    EXPECT_EQ(d.src_node, 3u);
    EXPECT_EQ(d.epoch, e.epoch);
    EXPECT_EQ(d.cluster, "loopback");
  }
  {
    Envelope e;
    e.kind = EnvelopeKind::kWire;
    e.src_node = 1;
    e.src_pid = 2;
    e.dst_pid = 5;
    e.app = true;
    e.token = false;
    e.token_seq = 0;
    e.sent_unix_us = 1234567;
    e.delay_us = 250;
    e.wire = {1, 2, 3, 4, 5};
    const Envelope d = decode_envelope(encode_envelope(e));
    EXPECT_EQ(d.kind, EnvelopeKind::kWire);
    EXPECT_EQ(d.src_pid, 2u);
    EXPECT_EQ(d.dst_pid, 5u);
    EXPECT_TRUE(d.app);
    EXPECT_FALSE(d.token);
    EXPECT_EQ(d.sent_unix_us, 1234567u);
    EXPECT_EQ(d.delay_us, 250u);
    EXPECT_EQ(d.wire, e.wire);
  }
  {
    // The ack must carry BOTH the seq and the epoch echo: a sender ignores
    // acks stamped with a previous incarnation's epoch, so an ack that
    // loses the epoch on the wire would be ignored forever and the token
    // would retry until the time cap (a real bug this test pins down).
    Envelope e;
    e.kind = EnvelopeKind::kTokenAck;
    e.src_node = 2;
    e.epoch = 0xdeadbeefull;
    e.ack_seq = 42;
    const Envelope d = decode_envelope(encode_envelope(e));
    EXPECT_EQ(d.kind, EnvelopeKind::kTokenAck);
    EXPECT_EQ(d.epoch, 0xdeadbeefull);
    EXPECT_EQ(d.ack_seq, 42u);
  }
  {
    Envelope e;
    e.kind = EnvelopeKind::kStatus;
    e.src_node = 1;
    e.status.node = 1;
    e.status.epoch = 7;
    e.status.seq = 19;
    e.status.quiet = true;
    e.status.signature = 0xabcdef;
    const Envelope d = decode_envelope(encode_envelope(e));
    EXPECT_EQ(d.status.node, 1u);
    EXPECT_EQ(d.status.epoch, 7u);
    EXPECT_EQ(d.status.seq, 19u);
    EXPECT_TRUE(d.status.quiet);
    EXPECT_EQ(d.status.signature, 0xabcdefu);
  }
  {
    Envelope e;
    e.kind = EnvelopeKind::kShutdown;
    e.src_node = 0;
    e.exit_code = 4;
    const Envelope d = decode_envelope(encode_envelope(e));
    EXPECT_EQ(d.kind, EnvelopeKind::kShutdown);
    EXPECT_EQ(d.exit_code, 4u);
  }
  {
    Envelope e;
    e.kind = EnvelopeKind::kShutdownAck;
    e.src_node = 3;
    const Envelope d = decode_envelope(encode_envelope(e));
    EXPECT_EQ(d.kind, EnvelopeKind::kShutdownAck);
    EXPECT_EQ(d.src_node, 3u);
  }
}

TEST(Envelope, RejectsHostileBodies) {
  // Unknown kind byte.
  Bytes bad = {9, 0, 0, 0, 0};
  EXPECT_THROW(decode_envelope(bad), FrameError);
  // Truncated mid-header.
  Envelope e;
  e.kind = EnvelopeKind::kWire;
  e.wire = {1, 2, 3};
  Bytes good = encode_envelope(e);
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    Bytes prefix(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_envelope(prefix), FrameError) << "cut=" << cut;
  }
  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0x77);
  EXPECT_THROW(decode_envelope(trailing), FrameError);
  // Whole-body oversize.
  Bytes huge(kMaxEnvelopeBytes + 1, 0);
  EXPECT_THROW(decode_envelope(huge), FrameError);
}

TEST(Envelope, WirePrefixPlusPayloadEqualsFrameEnvelope) {
  // The zero-copy send path splits a kWire envelope into a per-dest head
  // (frame_wire_envelope_prefix) plus the shared payload bytes; the
  // concatenation must be byte-identical to the copying frame_envelope
  // path or receivers would diverge.
  const std::vector<std::size_t> payload_sizes = {0, 1, 5, 127, 128, 4096};
  for (std::size_t n : payload_sizes) {
    Envelope e;
    e.kind = EnvelopeKind::kWire;
    e.src_node = 2;
    e.src_pid = 3;
    e.dst_pid = 7;
    e.app = (n % 2) == 0;
    e.token = !e.app;
    e.token_seq = 42 + n;
    e.sent_unix_us = 987654321;
    e.delay_us = 1500;
    e.wire = Bytes(n, static_cast<std::uint8_t>(n & 0xff));

    Bytes stream = frame_wire_envelope_prefix(e, e.wire.size());
    stream.insert(stream.end(), e.wire.begin(), e.wire.end());
    EXPECT_EQ(stream, frame_envelope(e)) << "payload size " << n;
  }
}

TEST(Envelope, WirePrefixRejectsOversizedPayloads) {
  Envelope e;
  e.kind = EnvelopeKind::kWire;
  EXPECT_THROW(frame_wire_envelope_prefix(e, kMaxFrameBytes + 1), FrameError);
}

TEST(EnvelopeReader, ReassemblesByteAtATimeAndBackToBack) {
  Envelope a;
  a.kind = EnvelopeKind::kHello;
  a.src_node = 1;
  a.epoch = 5;
  a.cluster = "c";
  Envelope b;
  b.kind = EnvelopeKind::kTokenAck;
  b.src_node = 2;
  b.epoch = 9;
  b.ack_seq = 77;

  Bytes stream = frame_envelope(a);
  const Bytes second = frame_envelope(b);
  stream.insert(stream.end(), second.begin(), second.end());

  EnvelopeReader reader;
  std::vector<Envelope> got;
  for (std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (auto body = reader.next()) got.push_back(decode_envelope(*body));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].kind, EnvelopeKind::kHello);
  EXPECT_EQ(got[0].epoch, 5u);
  EXPECT_EQ(got[1].kind, EnvelopeKind::kTokenAck);
  EXPECT_EQ(got[1].ack_seq, 77u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(EnvelopeReader, RejectsOversizedLengthPrefixBeforeBuffering) {
  // A hostile peer claiming a huge frame must be rejected from the 4-byte
  // prefix alone, not after the receiver buffered gigabytes.
  const std::uint32_t huge = 0x40000000;
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(huge & 0xff),
      static_cast<std::uint8_t>((huge >> 8) & 0xff),
      static_cast<std::uint8_t>((huge >> 16) & 0xff),
      static_cast<std::uint8_t>((huge >> 24) & 0xff)};
  EnvelopeReader reader;
  reader.feed(prefix, 4);
  EXPECT_THROW(reader.next(), FrameError);
}

TEST(Topology, LoopbackAssignsContiguousBlocks) {
  const TcpTopology topo = TcpTopology::loopback(10, 4);
  ASSERT_EQ(topo.nodes.size(), 4u);
  EXPECT_EQ(topo.nodes[0].processes, (std::vector<ProcessId>{0, 1, 2}));
  EXPECT_EQ(topo.nodes[1].processes, (std::vector<ProcessId>{3, 4, 5}));
  EXPECT_EQ(topo.nodes[2].processes, (std::vector<ProcessId>{6, 7}));
  EXPECT_EQ(topo.nodes[3].processes, (std::vector<ProcessId>{8, 9}));
  EXPECT_EQ(topo.node_of(4), 1u);
  EXPECT_EQ(topo.node_of(9), 3u);
}

TEST(Topology, JsonRoundTripPreservesShapeAndFaults) {
  TcpTopology topo = TcpTopology::loopback(6, 3, 7800, "rt");
  topo.faults.drop_prob = 0.125;
  topo.faults.token_retry = millis(10);
  PartitionEvent part;
  part.at = millis(100);
  part.heal_at = millis(300);
  part.groups = {{0, 1}, {2}};
  topo.faults.partitions.push_back(part);

  const TcpTopology back = TcpTopology::parse(topo.to_json());
  EXPECT_EQ(back.cluster, "rt");
  EXPECT_EQ(back.n, 6u);
  ASSERT_EQ(back.nodes.size(), 3u);
  EXPECT_EQ(back.nodes[1].port, 7801);
  EXPECT_EQ(back.nodes[2].processes, (std::vector<ProcessId>{4, 5}));
  EXPECT_DOUBLE_EQ(back.faults.drop_prob, 0.125);
  EXPECT_EQ(back.faults.token_retry, millis(10));
  ASSERT_EQ(back.faults.partitions.size(), 1u);
  EXPECT_EQ(back.faults.partitions[0].heal_at, millis(300));
  EXPECT_EQ(back.faults.partitions[0].groups,
            (std::vector<std::vector<ProcessId>>{{0, 1}, {2}}));
}

TEST(Topology, ValidateRejectsBadShapes) {
  TcpTopology topo = TcpTopology::loopback(4, 2);
  // Process hosted twice.
  TcpTopology dup = topo;
  dup.nodes[1].processes.push_back(0);
  EXPECT_THROW(dup.validate(), std::invalid_argument);
  // Process hosted nowhere.
  TcpTopology missing = topo;
  missing.nodes[1].processes.pop_back();
  EXPECT_THROW(missing.validate(), std::invalid_argument);
  // Node ids out of order.
  TcpTopology reorder = topo;
  std::swap(reorder.nodes[0], reorder.nodes[1]);
  EXPECT_THROW(reorder.validate(), std::invalid_argument);
  // Partition naming an unknown node.
  TcpTopology part = topo;
  PartitionEvent event;
  event.at = 1;
  event.heal_at = 2;
  event.groups = {{0}, {7}};
  part.faults.partitions.push_back(event);
  EXPECT_THROW(part.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace optrec
