// In-process TCP cluster integration tests: whole fleets over loopback
// sockets with crash + partition injection, validated by the shared
// causality oracle and the trace auditor — the TCP analogue of
// tests/live/live_runtime_test.cpp.
#include <gtest/gtest.h>

#include "src/tcp/tcp_cluster.h"
#include "src/trace/trace_auditor.h"

namespace optrec {
namespace {

TcpClusterConfig base_config() {
  TcpClusterConfig config;
  config.n = 8;
  config.nodes = 4;
  config.seed = 11;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.time_cap = seconds(60);
  return config;
}

TEST(TcpCluster, FaultFreeRunQuiescesWithBalancedStats) {
  TcpClusterConfig config = base_config();
  config.n = 4;
  config.nodes = 2;
  config.enable_oracle = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(cluster.oracle()->check_consistency().empty());
  // Cluster-summed local-view stats must balance: without injected faults
  // every send is eventually delivered, nothing is dropped or retried by
  // the transport, and nothing is left in flight.
  EXPECT_GT(result.net.messages_sent, 0u);
  EXPECT_EQ(result.net.messages_sent, result.net.messages_delivered);
  EXPECT_EQ(result.net.messages_dropped, 0u);
  EXPECT_EQ(result.tcp.protocol_errors, 0u);
  EXPECT_EQ(result.tcp.backpressure_drops, 0u);
  // k*(k-1)/2 link pairs, each established exactly once.
  EXPECT_EQ(result.tcp.connects, 1u);
  EXPECT_EQ(result.tcp.accepts, 1u);
  EXPECT_EQ(result.metrics.crashes, 0u);
}

TEST(TcpCluster, FourNodeCrashRecoveryWithPartitionStaysConsistent) {
  // The PR's acceptance scenario: a 4-node loopback fleet running DG with
  // two injected crashes and one scripted partition/heal must quiesce,
  // pass the causality oracle and the trace auditor, leave zero orphans,
  // and roll back at most once per process per failure.
  TcpClusterConfig config = base_config();
  config.process.retransmit_on_failure = true;
  config.crashes.push_back({millis(30), 2});
  config.crashes.push_back({millis(60), 5});
  PartitionEvent part;
  part.at = millis(50);
  part.heal_at = millis(250);
  part.groups = {{0, 1}, {2, 3}};  // node ids
  config.faults.partitions.push_back(part);
  config.enable_oracle = true;
  config.enable_trace = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.metrics.crashes, 2u);
  EXPECT_EQ(result.metrics.restarts, 2u);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);

  const std::vector<std::string> violations =
      cluster.oracle()->check_consistency();
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);

  const AuditReport report = audit_trace(cluster.trace()->events());
  EXPECT_TRUE(report.ok()) << report.summary();
  // Cross-node failure announcements really used the ack-tracked path.
  EXPECT_GT(result.net.tokens_delivered, 0u);
}

TEST(TcpCluster, DuplicateAndDropInjectionSurvivesTheFilters) {
  TcpClusterConfig config = base_config();
  config.n = 6;
  config.nodes = 3;
  config.process.retransmit_on_failure = true;
  config.faults.duplicate_prob = 0.15;
  config.faults.drop_prob = 0.05;
  config.crashes.push_back({millis(40), 1});
  config.enable_oracle = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(cluster.oracle()->check_consistency().empty());
  // The injection really happened and the protocol's filters absorbed it:
  // no duplicate application of any message (oracle would flag it).
  EXPECT_GT(result.net.messages_duplicated, 0u);
  EXPECT_GT(result.net.messages_dropped, 0u);
}

TEST(TcpCluster, UnevenProcessPlacementWorks) {
  // 5 processes over 3 nodes: {0,1} {2,3} {4} — exercises single-process
  // nodes and the pid->node routing on every send.
  TcpClusterConfig config = base_config();
  config.n = 5;
  config.nodes = 3;
  config.enable_oracle = true;

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(cluster.oracle()->check_consistency().empty());
}

}  // namespace
}  // namespace optrec
