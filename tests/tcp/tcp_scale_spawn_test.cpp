// Respawn regression for the fleet-scale transport features: a real
// multi-process fleet (optrec_node --spawn) running with BOTH the delta
// clock piggyback and hierarchical token dissemination on, where one node
// is SIGKILLed mid-run and respawned warm from disk.
//
// This is the transport-level half of the reused-send-seq hazard the codec
// test (DeltaCodecTest.RebirthWithReusedSeqsDecodesByteExact) covers in
// isolation: the respawned node comes back with a NEW incarnation epoch,
// its connections are re-established, and every per-connection codec must
// be created fresh — a stale encoder surviving the respawn would emit
// deltas against bases the peers no longer hold, which would surface here
// as resync storms, protocol errors, or a fleet that cannot quiesce.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/util/json.h"

namespace optrec {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "optrec-scale-XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

#ifdef OPTREC_NODE_BIN
TEST(TcpScaleSpawn, KillNineRespawnKeepsDeltaAndRelayFleetClean) {
  TempDir tmp;
  const std::string data_dir = (tmp.path / "data").string();
  const std::string metrics = (tmp.path / "metrics.json").string();
  const std::string log = (tmp.path / "harness.log").string();

  std::ostringstream cmd;
  cmd << OPTREC_NODE_BIN << " --spawn --processes=8 --tcp-nodes=4"
      << " --seed=7 --intensity=10 --depth=600 --retransmit"
      << " --delta-piggyback --token-fanout=2"
      << " --flush-ms=10 --ckpt-ms=50 --kill=1:400:900"
      // Generous cap: sanitizer builds run this fleet ~10x slower.
      << " --time-cap-ms=120000"
      << " --data-dir=" << data_dir << " --metrics-json=" << metrics
      << " >" << log << " 2>&1";
  const int status = std::system(cmd.str().c_str());
  ASSERT_TRUE(WIFEXITED(status));
  if (WEXITSTATUS(status) != 0) {
    std::ifstream in(log);
    std::ostringstream text;
    text << in.rdbuf();
    FAIL() << "harness exited " << WEXITSTATUS(status) << "\n" << text.str();
  }

  // Fold every node's metrics JSON: the fleet quiesced (exit 0 above), the
  // respawn was warm, delta frames and relays actually flowed, and no
  // stream ever desynchronised into a protocol error.
  std::uint64_t delta_frames = 0, relays = 0, protocol_errors = 0;
  std::uint64_t warm = 0;
  for (int node = 0; node < 4; ++node) {
    std::ifstream in(metrics + ".node" + std::to_string(node));
    ASSERT_TRUE(in.good()) << "node " << node << " wrote no metrics JSON";
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue root = JsonValue::parse(text.str());
    const JsonValue* tcp = root.find("tcp");
    ASSERT_NE(tcp, nullptr) << text.str();
    delta_frames += tcp->u64_or("delta_frames_tx", 0);
    relays += tcp->u64_or("relays_tx", 0);
    protocol_errors += tcp->u64_or("protocol_errors", 0);
    if (const JsonValue* durable = root.find("durable")) {
      warm += durable->u64_or("warm_recovered", 0);
    }
  }
  EXPECT_GT(delta_frames, 0u);
  EXPECT_GT(relays, 0u);  // the kill forced a hierarchical announcement
  EXPECT_EQ(protocol_errors, 0u);
  EXPECT_GE(warm, 1u) << "respawn fell back to a cold crash-announce";
}
#endif  // OPTREC_NODE_BIN

}  // namespace
}  // namespace optrec
