// Socket-level tests for TcpTransport: delivery, token ack/dedupe,
// reconnect backoff, and scripted partition masking — all over real
// loopback sockets with ephemeral or pid-derived fixed ports.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>

#include "src/live/live_clock.h"
#include "src/tcp/tcp_transport.h"
#include "src/util/rng.h"
#include "src/wire/wire_codec.h"

namespace optrec {
namespace {

/// Two single-process nodes over ephemeral loopback ports.
struct Pair {
  explicit Pair(TcpFaultConfig faults = {}, bool start_b = true) {
    topo = TcpTopology::loopback(2, 2);
    topo.faults = faults;
    a = std::make_unique<TcpTransport>(clock, topo, 0, /*seed=*/7);
    b = std::make_unique<TcpTransport>(clock, topo, 1, /*seed=*/7);
    a->set_peer_port(1, b->listen_port());
    b->set_peer_port(0, a->listen_port());
    a->start();
    if (start_b) b->start();
  }

  /// Pop the next frame from `t`'s channel for `pid`, waiting up to 2 s.
  std::optional<LiveFrame> pop(TcpTransport& t, ProcessId pid,
                               SimTime wait = seconds(2)) {
    LiveChannel& ch = t.channel(pid);
    const SimTime deadline = clock.now() + wait;
    while (clock.now() < deadline) {
      auto frame = ch.pop_ready(clock, clock.now() + millis(5), rng);
      if (frame) return frame;
    }
    return std::nullopt;
  }

  LiveClock clock;
  TcpTopology topo;
  Rng rng{99};
  std::unique_ptr<TcpTransport> a, b;
};

Message app_message(ProcessId src, ProcessId dst, std::uint8_t tag) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = src;
  m.dst = dst;
  m.src_version = 0;
  m.send_seq = tag;
  m.payload = {tag, 0x5a};
  return m;
}

TEST(TcpTransport, DeliversAppMessagesAcrossNodes) {
  TcpFaultConfig faults;
  faults.min_delay = 0;
  faults.max_delay = micros(100);
  Pair pair(faults);

  for (std::uint8_t i = 0; i < 5; ++i) {
    pair.a->send(app_message(0, 1, i));
  }
  for (std::uint8_t i = 0; i < 5; ++i) {
    auto frame = pair.pop(*pair.b, 1);
    ASSERT_TRUE(frame.has_value()) << "frame " << int(i) << " never arrived";
    EXPECT_EQ(frame->src, 0u);
    EXPECT_TRUE(frame->app);
    const Frame decoded = decode_frame(frame->wire.bytes());
    ASSERT_EQ(decoded.type, FrameType::kMessage);
    EXPECT_EQ(decoded.message.payload[1], 0x5a);
    pair.b->note_delivered_message(true);
  }
  EXPECT_EQ(pair.b->frames_in_flight(), 0u);
  EXPECT_EQ(pair.a->tcp_stats().protocol_errors, 0u);
  // Both sides: exactly one established connection for the pair.
  EXPECT_EQ(pair.a->tcp_stats().connects, 1u);
  EXPECT_EQ(pair.b->tcp_stats().accepts, 1u);
}

TEST(TcpTransport, RetriedTokensDedupeToSingleDelivery) {
  // Zero retry interval + a receiver whose IO thread starts late: the
  // sender's token goes into the kernel-accepted socket and is then
  // re-sent every IO tick until the receiver comes up and acks. All
  // copies but the first must be suppressed by the (epoch, seq) dedupe.
  TcpFaultConfig faults;
  faults.min_delay = 0;
  faults.max_delay = micros(100);
  faults.token_retry = 0;
  Pair pair(faults, /*start_b=*/false);

  Token token;
  token.from = 0;
  token.failed = FtvcEntry{0, 42};
  pair.a->broadcast_token(token);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  pair.b->start();

  auto frame = pair.pop(*pair.b, 1);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->token);
  pair.b->note_delivered_token();
  // No second copy ever surfaces.
  EXPECT_FALSE(pair.pop(*pair.b, 1, millis(200)).has_value());

  // The ack must eventually clear the unacked-token table.
  const SimTime deadline = pair.clock.now() + seconds(2);
  while (pair.a->outbound_pending() != 0 && pair.clock.now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(pair.a->outbound_pending(), 0u);
  EXPECT_GE(pair.a->tcp_stats().token_retries, 1u);
  EXPECT_EQ(pair.b->tcp_stats().dup_tokens_dropped,
            pair.b->tcp_stats().frames_rx - 2);  // hello + first copy
  EXPECT_EQ(pair.b->frames_in_flight(), 0u);
}

TEST(TcpTransport, InitiatorBacksOffAndReconnects) {
  // Fixed ports so a restarted listener is reachable at the same address.
  const std::uint16_t base = static_cast<std::uint16_t>(
      21000 + (static_cast<std::uint32_t>(::getpid()) * 13) % 30000);
  TcpTopology topo = TcpTopology::loopback(2, 2, base);
  topo.faults.min_delay = 0;
  topo.faults.max_delay = micros(100);
  topo.faults.reconnect_min = millis(5);
  topo.faults.reconnect_max = millis(20);

  LiveClock clock;
  Rng rng(99);
  // Node 0 is the initiator; node 1 does not exist yet.
  TcpTransport a(clock, topo, 0, /*seed=*/7);
  a.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Dial attempts kept failing with backoff in between: more than one, but
  // far fewer than a tight dial loop would produce.
  const std::uint64_t failures = a.tcp_stats().connect_failures;
  EXPECT_GE(failures, 2u);
  EXPECT_LE(failures, 30u);

  // The peer comes up; the initiator's next backed-off dial must land.
  TcpTransport b(clock, topo, 1, /*seed=*/7);
  b.start();
  Message m = app_message(0, 1, 9);
  a.send(m);
  LiveChannel& ch = b.channel(1);
  std::optional<LiveFrame> frame;
  const SimTime deadline = clock.now() + seconds(2);
  while (!frame && clock.now() < deadline) {
    frame = ch.pop_ready(clock, clock.now() + millis(5), rng);
  }
  ASSERT_TRUE(frame.has_value());
  b.note_delivered_message(true);
  EXPECT_EQ(a.tcp_stats().connects, 1u);
  EXPECT_EQ(b.tcp_stats().accepts, 1u);
}

TEST(TcpTransport, BackpressureCapIsExactAndDropsAreAccounted) {
  // With no listener at the peer's port, nothing drains the per-peer ring:
  // the app cap must admit exactly outbound_cap_frames, and every overflow
  // must show up in BOTH backpressure_drops and messages_dropped (merged
  // cluster stats balance on the latter). Fixed ports so the peer can be
  // brought up afterwards at the address the initiator keeps dialing.
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kExtra = 25;
  const std::uint16_t base = static_cast<std::uint16_t>(
      22000 + (static_cast<std::uint32_t>(::getpid()) * 17) % 30000);
  TcpTopology topo = TcpTopology::loopback(2, 2, base);
  topo.faults.min_delay = 0;
  topo.faults.max_delay = 0;
  topo.faults.reconnect_min = millis(1);
  topo.faults.reconnect_max = millis(5);
  topo.faults.outbound_cap_frames = kCap;

  LiveClock clock;
  Rng rng(99);
  TcpTransport a(clock, topo, 0, /*seed=*/7);
  a.start();

  for (std::size_t i = 0; i < kCap + kExtra; ++i) {
    a.send(app_message(0, 1, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(a.tcp_stats().backpressure_drops, kExtra);
  EXPECT_EQ(a.stats().messages_dropped, kExtra);
  // The admitted frames sit in node 1's outbound ring.
  const auto depths = a.queue_depths();
  ASSERT_EQ(depths.size(), 1u);
  EXPECT_EQ(depths[0].first, 1u);
  EXPECT_EQ(depths[0].second, kCap);

  // Once the peer comes up the ring drains, the admitted frames arrive,
  // and the cap frees up for new sends.
  TcpTransport b(clock, topo, 1, /*seed=*/7);
  b.start();
  LiveChannel& ch = b.channel(1);
  for (std::size_t i = 0; i < kCap; ++i) {
    std::optional<LiveFrame> frame;
    const SimTime deadline = clock.now() + seconds(2);
    while (!frame && clock.now() < deadline) {
      frame = ch.pop_ready(clock, clock.now() + millis(5), rng);
    }
    ASSERT_TRUE(frame.has_value()) << "capped frame " << i << " lost";
    b.note_delivered_message(true);
  }
  a.send(app_message(0, 1, 0x77));
  EXPECT_EQ(a.tcp_stats().backpressure_drops, kExtra)
      << "post-drain send must be admitted";
  std::optional<LiveFrame> frame;
  const SimTime deadline = clock.now() + seconds(2);
  while (!frame && clock.now() < deadline) {
    frame = ch.pop_ready(clock, clock.now() + millis(5), rng);
  }
  ASSERT_TRUE(frame.has_value());
  b.note_delivered_message(true);
}

TEST(TcpTransport, RespawnedOriginReusedRelayIdsStillDisseminate) {
  // Regression: the head's relay dedupe must be keyed by the requester's
  // incarnation epoch. A SIGKILLed+respawned origin restarts both its
  // relay-id and token-seq counters at 1; keyed by (node, relay id) alone,
  // the surviving head would match the dead incarnation's acked entry,
  // instantly re-ack, and never deliver the new failure token — orphans in
  // its subtree would never learn to roll back.
  TcpTopology topo = TcpTopology::loopback(2, 2);
  topo.faults.min_delay = 0;
  topo.faults.max_delay = micros(100);
  topo.faults.token_retry = millis(5);
  topo.scale.token_fanout = 2;

  LiveClock clock;
  Rng rng(99);
  TcpTransport b(clock, topo, 1, /*seed=*/7, /*epoch=*/500);
  const auto pop_b = [&](SimTime wait) -> std::optional<LiveFrame> {
    LiveChannel& ch = b.channel(1);
    const SimTime deadline = clock.now() + wait;
    while (clock.now() < deadline) {
      auto frame = ch.pop_ready(clock, clock.now() + millis(5), rng);
      if (frame) return frame;
    }
    return std::nullopt;
  };

  Token token;
  token.from = 0;
  token.failed = FtvcEntry{1, 0};
  {
    TcpTransport a(clock, topo, 0, /*seed=*/7, /*epoch=*/1000);
    a.set_peer_port(1, b.listen_port());
    b.set_peer_port(0, a.listen_port());
    a.start();
    b.start();
    a.broadcast_token(token);
    auto frame = pop_b(seconds(2));
    ASSERT_TRUE(frame.has_value());
    EXPECT_TRUE(frame->token);
    b.note_delivered_token();
    // Wait for the relay ack, so the head has marked the first broadcast's
    // relay id covered before the origin dies.
    const SimTime deadline = clock.now() + seconds(2);
    while (a.outbound_pending() != 0 && clock.now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(a.outbound_pending(), 0u);
  }  // kill-9 stand-in: the origin vanishes with all its transport state

  // The respawned incarnation deterministically reuses relay id 1 and
  // token seq 1 toward the same head.
  TcpTransport a2(clock, topo, 0, /*seed=*/7, /*epoch=*/2000);
  a2.set_peer_port(1, b.listen_port());
  a2.start();
  token.failed = FtvcEntry{2, 0};
  a2.broadcast_token(token);

  auto frame = pop_b(seconds(2));
  ASSERT_TRUE(frame.has_value())
      << "post-respawn broadcast swallowed by the previous incarnation's "
         "relay state";
  EXPECT_TRUE(frame->token);
  b.note_delivered_token();
  const Frame decoded = decode_frame(frame->wire.bytes());
  ASSERT_EQ(decoded.type, FrameType::kToken);
  EXPECT_EQ(decoded.token.failed.ver, 2u);
  EXPECT_EQ(b.tcp_stats().protocol_errors, 0u);
  // The origin's tracked relay must complete through the real ack path.
  const SimTime deadline = clock.now() + seconds(2);
  while (a2.outbound_pending() != 0 && clock.now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(a2.outbound_pending(), 0u);
}

TEST(TcpTransport, ScriptedPartitionHoldsTrafficUntilHeal) {
  TcpFaultConfig faults;
  faults.min_delay = 0;
  faults.max_delay = micros(100);
  PartitionEvent part;
  part.at = millis(30);
  part.heal_at = millis(250);
  part.groups = {{0}, {1}};
  faults.partitions.push_back(part);
  Pair pair(faults);

  // Let the link establish and the partition window open.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  pair.a->send(app_message(0, 1, 1));
  // Held: nothing may arrive while the window is open (sent at ~60 ms,
  // polls until ~160 ms, heal at 250 ms).
  EXPECT_FALSE(pair.pop(*pair.b, 1, millis(100)).has_value());

  // After heal the held frame must come through.
  auto frame = pair.pop(*pair.b, 1, seconds(2));
  ASSERT_TRUE(frame.has_value());
  EXPECT_GE(pair.clock.now(), millis(250));
  pair.b->note_delivered_message(true);
  // The partition must not have torn the connection down.
  EXPECT_EQ(pair.a->tcp_stats().disconnects, 0u);
  EXPECT_EQ(pair.b->tcp_stats().disconnects, 0u);
}

}  // namespace
}  // namespace optrec
