// Optional-feature integration tests: Remark-1 retransmission (with the
// BankApp conservation invariant), Remark-2 output commit and garbage
// collection, and the literal-TR rollback mode.
#include <gtest/gtest.h>

#include <numeric>

#include "src/app/bank_app.h"
#include "src/app/counter_app.h"
#include "src/harness/experiment.h"

namespace optrec {
namespace {

ScenarioConfig bank_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = seed;
  config.workload.kind = WorkloadKind::kBank;
  config.workload.intensity = 3;
  config.workload.depth = 32;
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(100);
  return config;
}

std::int64_t total_balance(Scenario& scenario) {
  std::int64_t total = 0;
  for (ProcessId pid = 0; pid < scenario.size(); ++pid) {
    total += dynamic_cast<const BankApp&>(scenario.process(pid).app()).balance();
  }
  return total;
}

TEST(RetransmissionTest, BankConservesMoneyAcrossFailure) {
  auto config = bank_config(200);
  config.process.retransmit_on_failure = true;
  config.failures.crashes = {{millis(30), 1}, {millis(70), 3}};
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  ASSERT_TRUE(scenario.oracle()->check_consistency().empty());
  const auto expected =
      static_cast<std::int64_t>(config.n) * BankAppConfig{}.initial_balance;
  EXPECT_EQ(total_balance(scenario), expected)
      << "with Remark-1 retransmission no money may vanish or duplicate";
}

TEST(RetransmissionTest, WithoutItMoneyMayVanishButNeverAppears) {
  auto config = bank_config(201);
  config.process.retransmit_on_failure = false;
  config.failures.crashes = {{millis(30), 1}, {millis(70), 3}};
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  ASSERT_TRUE(scenario.oracle()->check_consistency().empty());
  const auto expected =
      static_cast<std::int64_t>(config.n) * BankAppConfig{}.initial_balance;
  EXPECT_LE(total_balance(scenario), expected)
      << "duplication would mean a rollback undone on one side only";
}

TEST(RetransmissionTest, TokensCarryRestoredClock) {
  auto config = bank_config(202);
  config.process.retransmit_on_failure = true;
  config.failures = FailurePlan::single(0, millis(40));
  Scenario scenario(config);
  std::vector<Token> tokens;
  scenario.net().set_token_tap([&](const Token& t) { tokens.push_back(t); });
  ASSERT_TRUE(scenario.run());
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].restored_clock.has_value());
}

TEST(RetransmissionTest, DuplicatesAreFiltered) {
  auto config = bank_config(203);
  config.process.retransmit_on_failure = true;
  // Crash after most receipts are flushed: many retransmissions will be of
  // already-recovered messages and must be deduplicated, not redelivered.
  config.process.flush_interval = millis(5);
  config.failures = FailurePlan::single(1, millis(60));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  if (result.metrics.retransmissions > 0) {
    EXPECT_GE(result.metrics.retransmissions,
              result.metrics.messages_discarded_duplicate);
  }
}

ScenarioConfig output_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 3;
  config.seed = seed;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 4;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(60);
  config.process.enable_stability_tracking = true;
  config.process.stability_gossip_interval = millis(40);
  return config;
}

TEST(OutputCommitTest, OutputsGatedUntilStable) {
  // CounterApp with output_every needs a custom factory; emulate via the
  // workload's counter app by asserting the gating machinery itself: with
  // stability tracking on, gossip flows and commits trail requests.
  auto config = output_config(300);
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  EXPECT_GT(scenario.metrics().control_messages_sent, 0u)
      << "stability gossip is control traffic";
}

TEST(OutputCommitTest, RequestedOutputsEventuallyCommit) {
  ScenarioConfig config = output_config(301);
  Scenario scenario(config);
  // Swap in apps that emit outputs: rebuild via a dedicated scenario with a
  // counter workload that outputs; instead drive outputs through BankApp is
  // not possible — use CounterApp's output_every through a custom factory.
  // (Covered more directly below via direct process construction.)
  ASSERT_TRUE(scenario.run());
  EXPECT_EQ(scenario.metrics().outputs_requested,
            scenario.metrics().outputs_committed);
}

TEST(OutputCommitTest, CommitsHappenAndNeverExceedRequests) {
  // Direct construction so the app emits outputs.
  Simulation sim(302);
  NetworkConfig net_config;
  Network net(sim, net_config);
  Metrics metrics;
  ProcessConfig pconfig;
  pconfig.flush_interval = millis(20);
  pconfig.checkpoint_interval = millis(50);
  pconfig.enable_stability_tracking = true;
  pconfig.stability_gossip_interval = millis(30);

  CounterAppConfig app_config;
  app_config.initial_jobs = 6;
  app_config.hops = 40;
  app_config.all_seed = true;
  app_config.output_every = 3;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  for (ProcessId pid = 0; pid < 3; ++pid) {
    procs.push_back(std::make_unique<DamaniGargProcess>(
        RuntimeEnv(sim, sim, net), pid, 3, std::make_unique<CounterApp>(pid, 3, app_config),
        pconfig, metrics, nullptr));
  }
  for (auto& p : procs) {
    sim.schedule_at(0, [&p] { p->start(); });
  }
  sim.run(seconds(5));
  EXPECT_GT(metrics.outputs_requested, 0u);
  EXPECT_GT(metrics.outputs_committed, 0u);
  EXPECT_LE(metrics.outputs_committed, metrics.outputs_requested);
  EXPECT_GT(metrics.output_commit_latency.count(), 0u);
  // Committed outputs are recorded on the processes.
  std::size_t recorded = 0;
  for (const auto& p : procs) recorded += p->outputs().size();
  EXPECT_EQ(recorded, metrics.outputs_committed);
}

TEST(GarbageCollectionTest, ReclaimsStorageDuringLongRun) {
  auto config = output_config(303);
  config.process.enable_gc = true;
  config.workload.depth = 64;
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.metrics.gc_checkpoints_reclaimed +
                result.metrics.gc_log_entries_reclaimed,
            0u);
}

TEST(GarbageCollectionTest, SafeWithFailures) {
  auto config = output_config(304);
  config.process.enable_gc = true;
  config.failures.crashes = {{millis(50), 1}, {millis(120), 0}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
}

TEST(LiteralTrModeTest, StillConsistentJustLossier) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = 305;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.discard_rollback_suffix = true;
  config.process.flush_interval = millis(20);
  config.failures.crashes = {{millis(30), 1}, {millis(70), 2}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.messages_requeued_after_rollback, 0u);
}

}  // namespace
}  // namespace optrec
