// Deeper mechanics of the baseline protocols: coordinated-checkpointing
// round aborts and coordinator failure, sender-based replay fidelity, and
// cascading-baseline incarnation hygiene.
#include <gtest/gtest.h>

#include "src/app/counter_app.h"
#include "src/baselines/coordinated_process.h"
#include "src/harness/experiment.h"

namespace optrec {
namespace {

ScenarioConfig base(ProtocolKind protocol, std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = seed;
  config.protocol = protocol;
  config.workload.intensity = 4;
  config.workload.depth = 40;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(100);
  return config;
}

TEST(CoordinatedDeepTest, CoordinatorCrashAbortsTheRound) {
  // P0 (the coordinator) crashes right as its checkpoint round is in
  // flight; the round must abort via the deadline, deliveries resume, and
  // the system still converges consistently.
  auto config = base(ProtocolKind::kCoordinated, 1);
  config.failures = FailurePlan::single(0, millis(101));  // mid-round
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 1u);
}

TEST(CoordinatedDeepTest, CommittedRoundsOutliveFailures) {
  // After a crash + recovery epoch, new rounds keep committing.
  auto config = base(ProtocolKind::kCoordinated, 2);
  config.workload.depth = 96;
  config.failures = FailurePlan::single(2, millis(130));
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  auto& p0 = dynamic_cast<CoordinatedProcess&>(scenario.process(0));
  // The round timer keeps firing after app quiescence; wait out any open
  // round (they close within a couple of network round-trips).
  for (int i = 0; i < 20 && p0.coordinating(); ++i) {
    scenario.run_for(millis(20));
  }
  EXPECT_FALSE(p0.coordinating());
  EXPECT_FALSE(p0.recovering());
  // Epochs advanced exactly once (one failure).
  for (ProcessId pid = 0; pid < scenario.size(); ++pid) {
    EXPECT_EQ(dynamic_cast<CoordinatedProcess&>(scenario.process(pid)).epoch(),
              1u);
  }
}

TEST(CoordinatedDeepTest, EpochsKeepIncreasingAcrossSequentialFailures) {
  auto config = base(ProtocolKind::kCoordinated, 3);
  config.workload.depth = 96;
  config.failures.crashes = {{millis(130), 1}, {millis(260), 3}};
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  for (ProcessId pid = 0; pid < scenario.size(); ++pid) {
    EXPECT_EQ(dynamic_cast<CoordinatedProcess&>(scenario.process(pid)).epoch(),
              2u);
  }
  EXPECT_TRUE(scenario.oracle()->check_consistency().empty());
}

TEST(SenderBasedDeepTest, RecoveryReproducesConfirmedPrefixExactly) {
  // Run the same seed twice: once failure-free, once with a crash. The
  // crashed run's RSN-ordered replay must reconstruct states so faithfully
  // that the application converges to the same global result (counter jobs
  // are conserved by replay; sends were deferred until fully logged).
  auto clean = base(ProtocolKind::kSenderBased, 4);
  Scenario clean_run(clean);
  ASSERT_TRUE(clean_run.run());
  std::int64_t clean_total = 0;
  for (ProcessId pid = 0; pid < clean_run.size(); ++pid) {
    clean_total +=
        dynamic_cast<const CounterApp&>(clean_run.process(pid).app()).value();
  }

  auto crashy = base(ProtocolKind::kSenderBased, 4);
  crashy.failures = FailurePlan::single(2, millis(60));
  Scenario crashy_run(crashy);
  ASSERT_TRUE(crashy_run.run());
  ASSERT_TRUE(crashy_run.oracle()->check_consistency().empty());
  std::int64_t crashy_total = 0;
  for (ProcessId pid = 0; pid < crashy_run.size(); ++pid) {
    crashy_total +=
        dynamic_cast<const CounterApp&>(crashy_run.process(pid).app()).value();
  }
  // Sender-based logging loses NOTHING (every receipt is recoverable from
  // some sender's log): the final global counter mass must match.
  EXPECT_EQ(crashy_total, clean_total);
}

TEST(SenderBasedDeepTest, SequentialFailuresOfDifferentProcesses) {
  auto config = base(ProtocolKind::kSenderBased, 5);
  config.workload.depth = 64;
  config.failures.crashes = {{millis(50), 1}, {millis(150), 3}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 2u);
  // Receipts wiped from volatile memory are all reproduced from the
  // senders' logs; the first crash's lost RSNs are refilled by the
  // re-ACK + retransmit-unacked machinery before the second recovery.
  EXPECT_GT(result.metrics.messages_replayed +
                result.metrics.messages_delivered,
            0u);
}

TEST(CascadingDeepTest, ReannouncementsOnlyStrengthen) {
  // A process may announce the same version more than once (a deeper
  // rollback of the same incarnation range), but only with a timestamp no
  // larger than before: announcements must never resurrect invalidated
  // states. (History::observe_token keeps the minimum for the same reason.)
  auto config = base(ProtocolKind::kCascading, 6);
  config.network.fifo = true;
  config.workload.depth = 64;
  config.failures.crashes = {{millis(40), 1}, {millis(110), 2}};
  Scenario scenario(config);
  std::map<std::pair<ProcessId, Version>, Timestamp> floor;
  bool weakened = false;
  scenario.net().set_token_tap([&](const Token& t) {
    auto [it, inserted] =
        floor.try_emplace({t.from, t.failed.ver}, t.failed.ts);
    if (!inserted) {
      if (t.failed.ts > it->second) weakened = true;
      it->second = std::min(it->second, t.failed.ts);
    }
  });
  ASSERT_TRUE(scenario.run());
  EXPECT_FALSE(weakened)
      << "an announcement weakened a previously announced invalidation";
  EXPECT_TRUE(scenario.oracle()->check_consistency().empty());
}

TEST(CascadingDeepTest, RollbackCountsAttributeToOriginFailure) {
  auto config = base(ProtocolKind::kCascading, 7);
  config.network.fifo = true;
  config.workload.depth = 64;
  config.failures = FailurePlan::single(1, millis(60));
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  // Every recorded rollback must be attributed to the single real failure.
  for (const auto& [failure, per_process] :
       scenario.metrics().rollbacks_by_failure) {
    EXPECT_EQ(failure.first, 1u);
    EXPECT_EQ(failure.second, 0u);
  }
}

}  // namespace
}  // namespace optrec
