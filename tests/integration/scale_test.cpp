// Larger-scale and long-horizon runs: scaling in n, storage growth with and
// without garbage collection, stability-tracker convergence, and output
// commit latency bounds.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace optrec {
namespace {

TEST(ScaleTest, TwentyFourProcessesWithFailureBurst) {
  ScenarioConfig config;
  config.n = 24;
  config.seed = 77;
  config.workload.intensity = 2;
  config.workload.depth = 24;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(150);
  Rng rng(78);
  config.failures =
      FailurePlan::random(rng, config.n, 4, millis(20), millis(150));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
  // O(n) piggyback at n=24 is noticeably larger than at n=4 but bounded.
  EXPECT_GT(result.metrics.piggyback_per_message(), 30.0);
  EXPECT_LT(result.metrics.piggyback_per_message(), 300.0);
}

TEST(ScaleTest, GcBoundsStableStorage) {
  // Two identical long runs; one with GC. The GC run must finish with
  // strictly less stable storage while staying consistent across failures.
  const auto run_with_gc = [](bool gc) {
    ScenarioConfig config;
    config.n = 4;
    config.seed = 88;
    config.workload.intensity = 8;
    config.workload.depth = 96;
    config.workload.all_seed = true;
    config.process.flush_interval = millis(15);
    config.process.checkpoint_interval = millis(40);
    config.process.enable_stability_tracking = gc;
    config.process.enable_gc = gc;
    config.process.stability_gossip_interval = millis(30);
    config.failures = FailurePlan::single(2, millis(80));
    Scenario scenario(config);
    EXPECT_TRUE(scenario.run());
    EXPECT_TRUE(scenario.oracle()->check_consistency().empty());
    std::size_t bytes = 0;
    for (ProcessId pid = 0; pid < scenario.size(); ++pid) {
      bytes += scenario.process(pid).storage().stable_bytes();
    }
    return std::make_pair(bytes, scenario.metrics().gc_log_entries_reclaimed +
                                     scenario.metrics().gc_checkpoints_reclaimed);
  };
  const auto [without_gc, reclaimed_none] = run_with_gc(false);
  const auto [with_gc, reclaimed_some] = run_with_gc(true);
  EXPECT_EQ(reclaimed_none, 0u);
  EXPECT_GT(reclaimed_some, 0u);
  EXPECT_LT(with_gc, without_gc);
}

TEST(ScaleTest, StabilityTrackerConvergesToFullCoverage) {
  // After quiescence + a few gossip rounds, every process's tracker covers
  // every other process's final checkpoint clock.
  ScenarioConfig config;
  config.n = 4;
  config.seed = 89;
  config.workload.intensity = 4;
  config.workload.depth = 32;
  config.workload.all_seed = true;
  config.process.enable_stability_tracking = true;
  config.process.stability_gossip_interval = millis(30);
  config.process.flush_interval = millis(15);
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  // Let a few more gossip rounds land after the app quiesced.
  scenario.run_for(millis(300));
  for (ProcessId i = 0; i < scenario.size(); ++i) {
    for (ProcessId j = 0; j < scenario.size(); ++j) {
      const auto& ckpt = scenario.process(j).storage().checkpoints().latest();
      EXPECT_TRUE(scenario.dg(i).stability().covers(ckpt.clock))
          << "P" << i << " does not cover P" << j << "'s last checkpoint";
    }
  }
}

TEST(ScaleTest, LongRunStaysConsistentUnderPeriodicFailures) {
  ScenarioConfig config;
  config.n = 5;
  config.seed = 90;
  config.workload.intensity = 6;
  config.workload.depth = 200;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(15);
  config.process.checkpoint_interval = millis(60);
  // A failure roughly every 80ms for half a second.
  for (int k = 0; k < 6; ++k) {
    config.failures.crashes.push_back(
        {millis(40 + 80 * k), static_cast<ProcessId>(k % config.n)});
  }
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 6u);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
}

}  // namespace
}  // namespace optrec
