// Ablation: WHY the Section 6.1 deliverability rule exists.
//
// Crafted interleaving: P2, not yet knowing P1 failed, delivers a message
// that depends on P1's lost states, then (with postponement DISABLED)
// delivers a message from P1's new incarnation. Its clock entry for P1 is
// now (v1, ...) — the lost-state dependency is hidden behind the higher
// version. A message P2 then sends to P0 carries no trace of the doomed
// dependency, so P0 accepts it even though it has P1's token: P0 is an
// orphan that no token will ever expose. The ground-truth oracle catches the
// inconsistency; with postponement enabled the same interleaving is safe.
#include <gtest/gtest.h>

#include "../support/script_app.h"
#include "src/core/dg_process.h"
#include "src/harness/metrics.h"
#include "src/net/network.h"
#include "src/sim/simulation.h"
#include "src/truth/causality_oracle.h"

namespace optrec {
namespace {

using testing::craft;
using testing::encode_sends;
using testing::leaf;
using testing::ScriptApp;

struct Driver {
  explicit Driver(bool disable_postponement) : sim(7), net(sim, far()) {
    net.set_message_tap([this](const Message& m) { tapped.push_back(m); });
    net.set_token_tap([this](const Token& t) { tokens.push_back(t); });
    ProcessConfig config;
    config.checkpoint_interval = 0;
    config.flush_interval = 0;
    config.restart_delay = millis(5);
    config.ablation_disable_postponement = disable_postponement;
    for (ProcessId pid = 0; pid < 3; ++pid) {
      procs.push_back(std::make_unique<DamaniGargProcess>(
          RuntimeEnv(sim, sim, net), pid, 3, std::make_unique<ScriptApp>(), config, metrics,
          nullptr));
    }
    for (auto& p : procs) {
      sim.schedule_at(0, [&p] { p->start(); });
    }
    sim.run(1);
  }
  static NetworkConfig far() {
    NetworkConfig c;
    c.min_delay = c.max_delay = seconds(3600);
    return c;
  }
  DamaniGargProcess& p(ProcessId pid) { return *procs[pid]; }

  /// Returns true when P0 ends up silently depending on P1's lost state.
  bool drive_smuggling_interleaving() {
    // P1's doomed handler (unlogged) sends `doomed` to P2.
    p(1).on_message(craft(0, 1, p(0).clock(), encode_sends({{2, leaf()}}), 1));
    const Message doomed = tapped.at(0);

    // P1 fails; restores its initial state; announces (0,1); becomes v1.
    p(1).crash();
    sim.run(sim.now() + millis(10));
    const Token token = tokens.at(0);

    // P2 delivers the doomed message FIRST (it has no token yet)...
    p(2).on_message(doomed);
    if (p(2).delivered_count() != 1) return false;

    // ...then P1's v1 message reaches P2 *before the token*. With
    // postponement this is held; the ablation delivers it immediately and
    // the merge masks P2's v0 dependency behind the v1 entry.
    p(1).on_message(craft(0, 1, p(0).clock(), encode_sends({{2, leaf()}}), 2));
    const Message from_v1 = tapped.back();
    p(2).on_message(from_v1);
    const bool masked = p(2).delivered_count() == 2 &&
                        p(2).clock().entry(1).ver == 1;

    // P2 sends to P0, which already processed the token.
    p(2).on_message(craft(1, 2, p(2).clock(), encode_sends({{0, leaf()}}), 3));
    const Message smuggler = tapped.back();
    p(0).on_token(token);
    p(0).on_message(smuggler);

    // Did P0 accept a message that transitively depends on a lost state?
    return masked && p(0).delivered_count() == 1;
  }

  Simulation sim;
  Network net;
  Metrics metrics;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  std::vector<Message> tapped;
  std::vector<Token> tokens;
};

TEST(AblationTest, WithoutPostponementOrphansEscapeDetection) {
  Driver driver(/*disable_postponement=*/true);
  EXPECT_TRUE(driver.drive_smuggling_interleaving())
      << "the ablation should let the smuggled dependency through";
  EXPECT_EQ(driver.metrics.rollbacks, 0u);

  // P2 heals itself once the token lands...
  driver.p(2).on_token(driver.tokens.at(0));
  EXPECT_EQ(driver.metrics.rollbacks, 1u);

  // ...but P0's smuggled dependency is invisible to every mechanism: even a
  // replayed token cannot expose it. The orphan survives forever.
  driver.p(0).on_token(driver.tokens.at(0));
  EXPECT_EQ(driver.metrics.rollbacks, 1u);
  EXPECT_EQ(driver.p(0).delivered_count(), 1u) << "orphan state survives";
}

TEST(AblationTest, WithPostponementSameInterleavingIsSafe) {
  Driver driver(/*disable_postponement=*/false);
  EXPECT_FALSE(driver.drive_smuggling_interleaving())
      << "postponement must hold the v1 message until the token";
  // The v1 message is parked, not delivered: the mask never forms.
  EXPECT_EQ(driver.p(2).pending_count(), 1u);
  EXPECT_EQ(driver.metrics.messages_postponed, 1u);

  // Once the token arrives, P2 first rolls back its doomed delivery, THEN
  // absorbs the v1 message: its sends can no longer smuggle anything.
  driver.p(2).on_token(driver.tokens.at(0));
  EXPECT_EQ(driver.p(2).pending_count(), 0u);
  EXPECT_EQ(driver.p(2).delivered_count(), 1u);  // v1 msg only; doomed undone
}

}  // namespace
}  // namespace optrec
