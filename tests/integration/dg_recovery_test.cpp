// Recovery-path integration tests: failures, concurrent failures,
// partitions, and the Theorem 3 properties (asynchronous recovery, minimal
// rollback, maximum recoverable state).
#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace optrec {
namespace {

ScenarioConfig crashy_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = seed;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  // Small flush interval keeps workloads alive across crashes; crashes in
  // the middle of the traffic burst.
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(100);
  return config;
}

TEST(DgRecoveryTest, SingleFailureRecoversConsistently) {
  auto config = crashy_config(100);
  config.failures = FailurePlan::single(1, millis(30));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.crashes, 1u);
  EXPECT_EQ(result.metrics.restarts, 1u);
  EXPECT_EQ(result.net.token_broadcasts, 1u);
  EXPECT_EQ(result.net.tokens_sent, config.n - 1);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
}

TEST(DgRecoveryTest, AsynchronousRecoveryNeverBlocks) {
  auto config = crashy_config(101);
  config.failures = FailurePlan::single(2, millis(40));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  // Theorem 3: the restarting process waits for nobody.
  EXPECT_EQ(result.metrics.recovery_blocked_time, 0u);
  EXPECT_EQ(result.metrics.checkpoint_blocked_time, 0u);
}

TEST(DgRecoveryTest, SequentialFailuresOfDifferentProcesses) {
  auto config = crashy_config(102);
  config.failures.crashes = {{millis(25), 0}, {millis(60), 2}, {millis(95), 3}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.crashes, 3u);
  EXPECT_EQ(result.metrics.restarts, 3u);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
}

TEST(DgRecoveryTest, RepeatedFailuresOfSameProcess) {
  auto config = crashy_config(103);
  config.failures.crashes = {{millis(25), 1}, {millis(55), 1}, {millis(85), 1}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 3u);
  // Versions 0, 1, 2 failed: three distinct tokens.
  EXPECT_EQ(result.net.token_broadcasts, 3u);
}

TEST(DgRecoveryTest, ConcurrentFailures) {
  auto config = crashy_config(104);
  config.failures.crashes = {{millis(30), 0}, {millis(30), 1}, {millis(30), 2}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.crashes, 3u);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
}

TEST(DgRecoveryTest, AllProcessesFail) {
  auto config = crashy_config(105);
  config.failures.crashes = {
      {millis(30), 0}, {millis(30), 1}, {millis(30), 2}, {millis(30), 3}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 4u);
}

TEST(DgRecoveryTest, RecoveryDuringNetworkPartition) {
  auto config = crashy_config(106);
  config.failures = FailurePlan::single(1, millis(30));
  PartitionEvent partition;
  partition.at = millis(20);
  partition.heal_at = millis(200);
  partition.groups = {{0, 1}, {2, 3}};
  config.failures.partitions.push_back(partition);
  const auto result = run_experiment(config);
  // P1 restarts inside the partition without waiting (tokens to the far
  // side are retried until heal); the system still converges.
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 1u);
  EXPECT_EQ(result.metrics.recovery_blocked_time, 0u);
  EXPECT_GT(result.net.messages_retried, 0u);
}

TEST(DgRecoveryTest, OnlyOrphansRolledBack) {
  // Theorem 3 "maximum recoverable state": the rolled-back set is exactly
  // the oracle's orphan set.
  ScenarioConfig config = crashy_config(107);
  config.failures = FailurePlan::single(0, millis(35));
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  const CausalityOracle& oracle = *scenario.oracle();
  for (StateId s : oracle.rolled_back_states()) {
    EXPECT_TRUE(oracle.is_orphan(s))
        << "state " << s << " rolled back but not an orphan (minimality)";
  }
  for (ProcessId pid = 0; pid < config.n; ++pid) {
    for (StateId s : oracle.states_of(pid)) {
      if (oracle.is_orphan(s)) {
        EXPECT_TRUE(oracle.was_rolled_back(s))
            << "orphan state " << s << " survived";
      }
    }
  }
}

TEST(DgRecoveryTest, LostWorkBoundedByFlushInterval) {
  // With continuous flushing, a crash loses only the unflushed tail.
  auto config = crashy_config(108);
  config.process.flush_interval = millis(5);
  config.failures = FailurePlan::single(1, millis(50));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  // Generous bound: the tail is small relative to everything delivered.
  EXPECT_LT(result.metrics.messages_lost_in_crash,
            result.metrics.messages_delivered);
}

TEST(DgRecoveryTest, ObsoleteDiscardsMatchOracle) {
  ScenarioConfig config = crashy_config(109);
  config.failures.crashes = {{millis(30), 1}, {millis(70), 2}};
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  const CausalityOracle& oracle = *scenario.oracle();
  for (const auto& [msg_id, fate] : oracle.messages()) {
    if (fate.discarded) {
      EXPECT_TRUE(oracle.is_message_obsolete(msg_id))
          << "message " << msg_id << " discarded but not obsolete";
    }
  }
}

TEST(DgRecoveryTest, CrashWhileDownIsIgnored) {
  auto config = crashy_config(110);
  config.process.restart_delay = millis(20);
  // Second crash lands inside the first one's downtime window: no-op.
  config.failures.crashes = {{millis(30), 1}, {millis(40), 1}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.metrics.crashes, 1u);
  EXPECT_EQ(result.metrics.restarts, 1u);
}

}  // namespace
}  // namespace optrec
