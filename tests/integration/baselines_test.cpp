// Baseline protocol integration tests: each comparison protocol runs its
// workload to quiescence and recovers consistently within its documented
// scope; their distinguishing costs show up in the metrics (Table 1).
#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace optrec {
namespace {

ScenarioConfig config_for(ProtocolKind protocol, std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = seed;
  config.protocol = protocol;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 4;
  config.workload.depth = 32;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(100);
  return config;
}

TEST(PlainProcessTest, FailureFreeZeroOverhead) {
  auto plain_config = config_for(ProtocolKind::kPlain, 1);
  plain_config.process.flush_interval = 0;  // nothing worth flushing
  const auto result = run_experiment(plain_config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.checkpoints_taken, 0u);
  EXPECT_EQ(result.metrics.log_flushes, 0u);
  // Header-only overhead (src/dst/seq), no clock: just a few bytes.
  EXPECT_LT(result.metrics.piggyback_per_message(), 16.0);
}

TEST(PessimisticTest, FailureFreeSyncWritesPerMessage) {
  const auto result = run_experiment(config_for(ProtocolKind::kPessimistic, 2));
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  // The defining cost: one synchronous stable write per delivery.
  EXPECT_EQ(result.metrics.sync_log_writes, result.metrics.messages_delivered);
}

TEST(PessimisticTest, CrashRecoversLocallyNoRollbacks) {
  auto config = config_for(ProtocolKind::kPessimistic, 3);
  config.failures = FailurePlan::single(1, millis(30));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.rollbacks, 0u) << "nobody else ever rolls back";
  EXPECT_EQ(result.metrics.messages_lost_in_crash, 0u)
      << "everything was logged synchronously";
  EXPECT_EQ(result.metrics.recovery_blocked_time, 0u);
}

TEST(PessimisticTest, MultipleAndConcurrentFailures) {
  auto config = config_for(ProtocolKind::kPessimistic, 4);
  config.failures.crashes = {{millis(30), 0}, {millis(30), 2}, {millis(60), 1}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 3u);
}

TEST(CoordinatedTest, FailureFreeRoundsBlockDeliveries) {
  const auto result = run_experiment(config_for(ProtocolKind::kCoordinated, 5));
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  // Committed rounds happened and the synchronization cost is visible.
  EXPECT_GT(result.metrics.checkpoints_taken, config_for(ProtocolKind::kCoordinated, 5).n);
  EXPECT_GT(result.metrics.checkpoint_blocked_time, 0u);
  EXPECT_GT(result.metrics.control_messages_sent, 0u);
}

TEST(CoordinatedTest, CrashRollsEveryoneBack) {
  auto config = config_for(ProtocolKind::kCoordinated, 6);
  config.failures = FailurePlan::single(1, millis(130));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  // Every *other* process rolls back to the committed line.
  EXPECT_EQ(result.metrics.rollbacks, config.n - 1);
  // Recovery is synchronous: the restarting process blocked on peer acks.
  EXPECT_GT(result.metrics.recovery_blocked_time, 0u);
}

TEST(SenderBasedTest, FailureFreeThreeLegHandshake) {
  const auto result = run_experiment(config_for(ProtocolKind::kSenderBased, 7));
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  // ACK + confirm per delivery: at least 2 control messages per app message.
  EXPECT_GE(result.metrics.control_messages_sent,
            2 * result.metrics.messages_delivered);
  // O(1) piggyback: no vector clock on the wire.
  EXPECT_LT(result.metrics.piggyback_per_message(), 16.0);
}

TEST(SenderBasedTest, CrashRecoversFromPeerLogs) {
  auto config = config_for(ProtocolKind::kSenderBased, 8);
  config.failures = FailurePlan::single(2, millis(30));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.rollbacks, 0u);
  // Recovery waits for every peer's replay: synchronous.
  EXPECT_GT(result.metrics.recovery_blocked_time, 0u);
}

TEST(PetersonKearnsTest, FailureFreeMatchesDgShape) {
  auto config = config_for(ProtocolKind::kPetersonKearns, 20);
  config.network.fifo = true;  // the protocol's ordering assumption
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.control_messages_sent, 0u)
      << "acks only flow during recovery";
  EXPECT_GT(result.metrics.piggyback_per_message(), 0.0);
}

TEST(PetersonKearnsTest, RecoveryBlocksOnAcknowledgements) {
  auto config = config_for(ProtocolKind::kPetersonKearns, 21);
  config.network.fifo = true;
  config.failures = FailurePlan::single(1, millis(40));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.metrics.recovery_blocked_time, 0u)
      << "the restarting process waits for every peer (synchronous)";
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
  // One ack per peer.
  EXPECT_EQ(result.metrics.control_messages_sent, config.n - 1);
}

TEST(CascadingTest, FailureFreeMatchesDgShape) {
  const auto result = run_experiment(config_for(ProtocolKind::kCascading, 9));
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.metrics.piggyback_per_message(), 0.0);
}

TEST(CascadingTest, CrashRecoversButMayCascade) {
  auto config = config_for(ProtocolKind::kCascading, 10);
  config.workload.depth = 64;
  config.failures = FailurePlan::single(1, millis(40));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 1u);
  // Announcements cascade: every rollback re-announces.
  EXPECT_GE(result.net.token_broadcasts, 1u + result.metrics.rollbacks);
}

TEST(Table1ShapeTest, PiggybackOrdering) {
  // DG piggybacks O(n) vector entries; pessimistic and sender-based carry
  // O(1); the measured bytes must order accordingly on identical workloads.
  const auto dg = run_experiment(config_for(ProtocolKind::kDamaniGarg, 11));
  const auto pess = run_experiment(config_for(ProtocolKind::kPessimistic, 11));
  const auto sb = run_experiment(config_for(ProtocolKind::kSenderBased, 11));
  EXPECT_GT(dg.metrics.piggyback_per_message(),
            pess.metrics.piggyback_per_message());
  EXPECT_GT(dg.metrics.piggyback_per_message(),
            sb.metrics.piggyback_per_message());
}

TEST(Table1ShapeTest, OnlyDgAndCascadingRecoverAsynchronously) {
  for (ProtocolKind kind : {ProtocolKind::kDamaniGarg, ProtocolKind::kCascading}) {
    auto config = config_for(kind, 12);
    config.failures = FailurePlan::single(1, millis(40));
    const auto result = run_experiment(config);
    EXPECT_EQ(result.metrics.recovery_blocked_time, 0u)
        << protocol_name(kind);
  }
  for (ProtocolKind kind :
       {ProtocolKind::kCoordinated, ProtocolKind::kSenderBased}) {
    auto config = config_for(kind, 12);
    config.failures = FailurePlan::single(1, millis(130));
    const auto result = run_experiment(config);
    EXPECT_GT(result.metrics.recovery_blocked_time, 0u) << protocol_name(kind);
  }
}

}  // namespace
}  // namespace optrec
