// Extreme operating points: configurations that maximize stress on the
// recovery machinery — no logging at all, rapid repeated crashes, crashes
// landing right after restarts, heavy message loss — all still bound by the
// oracle's consistency and minimal-rollback invariants.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace optrec {
namespace {

ScenarioConfig stress_base(std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = seed;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  return config;
}

TEST(ExtremeTest, NoLoggingAtAll) {
  // flush_interval = 0 and no timer checkpoints beyond the initial one: a
  // crash destroys the process's entire post-start computation. Everyone
  // who heard from it becomes an orphan; consistency must still hold.
  auto config = stress_base(501);
  config.process.flush_interval = 0;
  config.process.checkpoint_interval = 0;
  config.failures = FailurePlan::single(1, millis(60));
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  EXPECT_TRUE(scenario.oracle()->check_consistency().empty());
  EXPECT_GT(scenario.metrics().messages_lost_in_crash, 0u);
  // The failed process replays nothing (it never flushed), but orphaned
  // peers still flush-then-replay during their rollbacks (paper Remark 1:
  // "before rolling back, it can log all the messages").
  EXPECT_EQ(scenario.process(1).delivered_count(),
            scenario.process(1).storage().log().total_count());
  EXPECT_LE(scenario.metrics().max_rollbacks_per_process_per_failure(), 1u);
}

TEST(ExtremeTest, CrashImmediatelyAfterRestart) {
  auto config = stress_base(502);
  config.process.flush_interval = millis(15);
  config.process.restart_delay = millis(5);
  // Three crashes of the same process, each landing ~1ms after the previous
  // restart completes.
  config.failures.crashes = {{millis(40), 2}, {millis(46), 2}, {millis(52), 2}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 3u);
  // Three incarnations burned: the final version is 3.
  Scenario verify(config);
  ASSERT_TRUE(verify.run());
  EXPECT_EQ(verify.process(2).version(), 3u);
}

TEST(ExtremeTest, EveryProcessCrashesTwice) {
  auto config = stress_base(503);
  config.process.flush_interval = millis(10);
  for (int round = 0; round < 2; ++round) {
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      config.failures.crashes.push_back(
          {millis(30 + 40 * round + 7 * pid), pid});
    }
  }
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 2 * config.n);
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
}

TEST(ExtremeTest, HeavyLossPlusFailures) {
  auto config = stress_base(504);
  config.network.drop_prob = 0.15;
  config.process.flush_interval = millis(15);
  config.failures.crashes = {{millis(30), 0}, {millis(70), 3}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
}

TEST(ExtremeTest, CrashDuringPartitionBothSides) {
  auto config = stress_base(505);
  config.process.flush_interval = millis(15);
  PartitionEvent split;
  split.at = millis(20);
  split.heal_at = millis(300);
  split.groups = {{0, 1}, {2, 3}};
  config.failures.partitions.push_back(split);
  // One crash on each side of the partition, while it is up.
  config.failures.crashes = {{millis(40), 0}, {millis(50), 3}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.metrics.restarts, 2u);
  EXPECT_EQ(result.metrics.recovery_blocked_time, 0u);
}

TEST(ExtremeTest, TinyCheckpointIntervalChurns) {
  auto config = stress_base(506);
  config.process.checkpoint_interval = millis(5);
  config.process.flush_interval = millis(5);
  config.failures.crashes = {{millis(40), 1}, {millis(90), 2}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.metrics.checkpoints_taken, 50u);
  // Aggressive checkpointing bounds replay work sharply.
  EXPECT_LT(result.metrics.messages_replayed,
            result.metrics.messages_delivered);
}

TEST(ExtremeTest, LongRestartDelayQueuesTraffic) {
  // A slow restart leaves the process dark while peers keep sending; the
  // reliable transport retries into the new incarnation.
  auto config = stress_base(507);
  config.process.restart_delay = millis(80);
  config.process.flush_interval = millis(15);
  config.failures = FailurePlan::single(1, millis(40));
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.net.messages_retried, 0u);
}

TEST(ExtremeTest, RetransmissionUnderRepeatedFailures) {
  auto config = stress_base(508);
  config.workload.kind = WorkloadKind::kBank;
  config.process.retransmit_on_failure = true;
  config.process.flush_interval = millis(25);
  config.failures.crashes = {{millis(30), 1}, {millis(60), 1}, {millis(95), 2}};
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_LE(result.metrics.max_rollbacks_per_process_per_failure(), 1u);
}

}  // namespace
}  // namespace optrec
