// Application-level invariants across recovery: each workload carries a
// global property that a correct recovery protocol must preserve. These are
// end-to-end checks a user of the library would actually care about.
#include <gtest/gtest.h>

#include "src/app/gossip_app.h"
#include "src/app/pingpong_app.h"
#include "src/harness/scenario.h"

namespace optrec {
namespace {

TEST(GossipInvariantTest, NoGhostKnowledgeAfterFailures) {
  // Knowledge can only come from rumors actually originated: after crashes
  // and rollbacks, nobody may "know" a rumor sequence beyond what its origin
  // generated — a leak here would mean an orphan state survived.
  ScenarioConfig config;
  config.n = 5;
  config.seed = 601;
  config.workload.kind = WorkloadKind::kGossip;
  config.workload.intensity = 3;  // 3 rumors per origin
  config.workload.depth = 10;
  config.process.flush_interval = millis(15);
  config.failures.crashes = {{millis(25), 1}, {millis(60), 3}};
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  ASSERT_TRUE(scenario.oracle()->check_consistency().empty());
  for (ProcessId pid = 0; pid < scenario.size(); ++pid) {
    const auto& gossip =
        dynamic_cast<const GossipApp&>(scenario.process(pid).app());
    for (ProcessId origin = 0; origin < scenario.size(); ++origin) {
      EXPECT_LE(gossip.known()[origin], config.workload.intensity)
          << "P" << pid << " knows ghost rumors of P" << origin;
    }
    // Everyone trivially knows their own rumors (on_start is checkpointed).
    EXPECT_EQ(gossip.known()[pid], config.workload.intensity);
  }
}

TEST(GossipInvariantTest, SelfKnowledgeSurvivesOwnCrash) {
  // A process's own rumors are generated in on_start, which is protected by
  // the initial checkpoint: its own knowledge must survive its crash.
  ScenarioConfig config;
  config.n = 4;
  config.seed = 602;
  config.workload.kind = WorkloadKind::kGossip;
  config.workload.intensity = 2;
  config.workload.depth = 8;
  config.process.flush_interval = millis(15);
  config.failures = FailurePlan::single(2, millis(40));
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  const auto& crashed =
      dynamic_cast<const GossipApp&>(scenario.process(2).app());
  EXPECT_EQ(crashed.known()[2], 2u);
}

TEST(PingPongInvariantTest, FailureInOnePairDoesNotDisturbOthers) {
  // Pairs are causally independent; a crash inside pair (0,1) must leave
  // pair (2,3)'s volley exactly where a failure-free run puts it.
  const auto run_pair_rounds = [](bool crash) {
    ScenarioConfig config;
    config.n = 4;
    config.seed = 603;
    config.workload.kind = WorkloadKind::kPingPong;
    config.workload.depth = 40;
    config.process.flush_interval = millis(15);
    if (crash) config.failures = FailurePlan::single(1, millis(30));
    Scenario scenario(config);
    EXPECT_TRUE(scenario.run());
    EXPECT_TRUE(scenario.oracle()->check_consistency().empty());
    return std::make_pair(
        dynamic_cast<const PingPongApp&>(scenario.process(2).app())
            .last_round(),
        dynamic_cast<const PingPongApp&>(scenario.process(3).app())
            .last_round());
  };
  const auto clean = run_pair_rounds(false);
  const auto crashed = run_pair_rounds(true);
  EXPECT_EQ(clean, crashed)
      << "recovery in pair (0,1) leaked into pair (2,3)";
}

TEST(PingPongInvariantTest, VolleyCompletesDespiteMidGameCrash) {
  // The volley state is tiny and frequently logged; with retransmission the
  // full round count completes even when one player crashes mid-game.
  ScenarioConfig config;
  config.n = 2;
  config.seed = 604;
  config.workload.kind = WorkloadKind::kPingPong;
  config.workload.depth = 60;
  config.process.flush_interval = millis(10);
  config.process.retransmit_on_failure = true;
  config.failures = FailurePlan::single(1, millis(50));
  Scenario scenario(config);
  ASSERT_TRUE(scenario.run());
  ASSERT_TRUE(scenario.oracle()->check_consistency().empty());
  const auto& even = dynamic_cast<const PingPongApp&>(scenario.process(0).app());
  const auto& odd = dynamic_cast<const PingPongApp&>(scenario.process(1).app());
  EXPECT_EQ(std::max(even.last_round(), odd.last_round()), 60u)
      << "the volley must reach its full round budget";
}

}  // namespace
}  // namespace optrec
