// Adversarial hand-driven orderings for the Damani-Garg protocol, including
// regression tests for the three protocol-level subtleties the property
// sweeps uncovered (DESIGN.md §3: identity monotonicity, own-token
// durability, send-seq monotonicity).
#include <gtest/gtest.h>

#include "../support/script_app.h"
#include "src/core/dg_process.h"
#include "src/harness/metrics.h"
#include "src/net/network.h"
#include "src/sim/simulation.h"

namespace optrec {
namespace {

using testing::craft;
using testing::encode_sends;
using testing::leaf;
using testing::ScriptApp;

class AdversarialTest : public ::testing::Test {
 protected:
  AdversarialTest() : sim(99), net(sim, far()) {
    net.set_message_tap([this](const Message& m) { tapped.push_back(m); });
    net.set_token_tap([this](const Token& t) { tokens.push_back(t); });
    ProcessConfig config;
    config.checkpoint_interval = 0;
    config.flush_interval = 0;
    config.restart_delay = millis(5);
    for (ProcessId pid = 0; pid < 3; ++pid) {
      procs.push_back(std::make_unique<DamaniGargProcess>(
          RuntimeEnv(sim, sim, net), pid, 3, std::make_unique<ScriptApp>(), config, metrics,
          nullptr));
    }
    for (auto& p : procs) {
      sim.schedule_at(0, [&p] { p->start(); });
    }
    sim.run(1);
  }

  static NetworkConfig far() {
    NetworkConfig c;
    c.min_delay = c.max_delay = seconds(3600);
    return c;
  }

  DamaniGargProcess& p(ProcessId pid) { return *procs[pid]; }
  void settle() { sim.run(sim.now() + millis(20)); }

  /// Crash `pid` and return its failure token.
  Token crash_and_token(ProcessId pid) {
    const std::size_t before = tokens.size();
    p(pid).crash();
    settle();
    EXPECT_EQ(tokens.size(), before + 1);
    return tokens.back();
  }

  Simulation sim;
  Network net;
  Metrics metrics;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  std::vector<Message> tapped;
  std::vector<Token> tokens;
};

TEST_F(AdversarialTest, TokensProcessedInReverseVersionOrder) {
  // P1 fails twice; a message from v2 arrives first, then tokens for v1 and
  // v0 in REVERSE order. Delivery must wait for the full chain.
  crash_and_token(1);  // v0 token
  crash_and_token(1);  // v1 token
  EXPECT_EQ(p(1).version(), 2u);

  // m from P1 v2 to P0.
  p(1).on_message(craft(2, 1, p(2).clock(), encode_sends({{0, leaf()}}), 9));
  const Message m = tapped.back();
  ASSERT_EQ(m.clock.entry(1).ver, 2u);

  p(0).on_message(m);
  EXPECT_EQ(p(0).pending_count(), 1u) << "needs token v0 first";

  p(0).on_token(tokens[1]);  // v1 token first (reverse order)
  EXPECT_EQ(p(0).pending_count(), 1u) << "still needs v0";
  EXPECT_EQ(p(0).delivered_count(), 0u);

  p(0).on_token(tokens[0]);  // v0 token completes the chain
  EXPECT_EQ(p(0).pending_count(), 0u);
  EXPECT_EQ(p(0).delivered_count(), 1u);
}

TEST_F(AdversarialTest, DuplicateTokenDeliveryIsIdempotent) {
  // P0 becomes an orphan; the token is (maliciously) delivered twice. The
  // second processing must not roll back again (minimal rollback).
  p(1).on_message(craft(0, 1, p(0).clock(), encode_sends({{0, leaf()}}), 1));
  p(0).on_message(tapped.back());
  const Token token = crash_and_token(1);
  p(0).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 1u);
  p(0).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 1u) << "token replay must be idempotent";
}

TEST_F(AdversarialTest, VersionIdentitySurvivesCrossIncarnationRollback) {
  // Regression (DESIGN.md §3): P1 delivers a message from P0 (unlogged by
  // P0's standards but P1 logs it), crashes, restarts as v1 — and THEN
  // learns that the state it restored depended on P0's lost states. Its
  // rollback restores a v0 checkpoint; its own version must NOT revert.
  //
  // Build: P0 handler (unlogged) sends to P1; P1 delivers AND LOGS it; P1
  // crashes and restarts (replays the receipt — still orphan-dependent);
  // P0's token then arrives at P1.
  p(0).on_message(craft(2, 0, p(2).clock(), encode_sends({{1, leaf()}}), 1));
  const Message doomed = tapped.back();  // sent by P0's unlogged handler
  p(1).on_message(doomed);
  p(1).storage().log().flush();  // P1 logs the orphan-making receipt

  const Token p1_token = crash_and_token(1);  // P1 fails, replays the receipt
  EXPECT_EQ(p(1).version(), 1u);
  EXPECT_EQ(p1_token.failed.ver, 0u);

  const Token p0_token = crash_and_token(0);  // P0 loses the doomed handler
  p(1).on_token(p0_token);                    // P1 is an orphan -> rollback
  EXPECT_EQ(metrics.rollbacks, 1u);
  EXPECT_EQ(p(1).version(), 1u)
      << "rollback to a v0 checkpoint must not revert P1's incarnation";
  EXPECT_EQ(p(1).clock().self().ver, 1u);
  // The rollback re-checkpoints so the incarnation survives another crash.
  EXPECT_EQ(p(1).storage().checkpoints().latest().version, 1u);

  const Token second = crash_and_token(1);
  EXPECT_EQ(second.failed.ver, 1u) << "no version reuse after the rollback";
  EXPECT_EQ(p(1).version(), 2u);
}

TEST_F(AdversarialTest, OwnTokenSurvivesRollbackToPreFailureCheckpoint) {
  // Regression (DESIGN.md §3): after the cross-incarnation rollback above,
  // P1's history must still know ITS OWN v0 token — otherwise messages
  // referencing P1 v1 would be postponed forever.
  p(0).on_message(craft(2, 0, p(2).clock(), encode_sends({{1, leaf()}}), 1));
  p(1).on_message(tapped.back());
  p(1).storage().log().flush();
  crash_and_token(1);
  const Token p0_token = crash_and_token(0);
  p(1).on_token(p0_token);

  EXPECT_TRUE(p(1).history().has_token(1, 0))
      << "own v0 token lost by the rollback-restored history";

  // And a third party can still deliver a post-rollback P1 message after
  // seeing the v0 token.
  p(1).on_message(craft(2, 1, p(2).clock(), encode_sends({{0, leaf()}}), 7));
  const Message fresh = tapped.back();
  p(0).on_token(tokens[0]);  // P1's v0 token
  p(0).on_message(fresh);
  EXPECT_EQ(p(0).pending_count(), 0u);
  EXPECT_EQ(p(0).delivered_count(), 1u);
}

TEST_F(AdversarialTest, SendSeqNotReusedAfterRollback) {
  // Regression (DESIGN.md §3): P0 delivers a message whose handler sends to
  // P2 (seq S); P0 then rolls back past it and a NEW handler sends to P2,
  // which must NOT reuse seq S — P2 already delivered the old send and
  // would swallow the new one as a duplicate.
  //
  // Prime P1 past its restore point so the message below is orphan-making.
  p(1).on_message(craft(2, 1, p(2).clock(), leaf(), 99));
  p(0).on_message(craft(1, 0, p(1).clock(), encode_sends({{2, leaf()}}), 1));
  const Message old_send = tapped.back();
  p(2).on_message(old_send);  // P2 delivers the doomed send
  EXPECT_EQ(p(2).delivered_count(), 1u);

  // P1 crashes having never logged the handler that fed P0: P0's delivery
  // becomes an orphan.
  const Token token = crash_and_token(1);
  p(0).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 1u);
  EXPECT_EQ(p(0).delivered_count(), 0u);

  // New handler on P0's fresh timeline sends to P2 again.
  p(0).on_message(craft(1, 0, p(1).clock(), encode_sends({{2, leaf()}}), 2));
  const Message new_send = tapped.back();
  EXPECT_GT(new_send.send_seq, old_send.send_seq)
      << "discarded sequence numbers must not be reused";

  // P2 (which also processed the token and rolled its orphan delivery back)
  // accepts the genuinely new message.
  p(2).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 2u);
  p(2).on_message(new_send);
  EXPECT_EQ(metrics.messages_discarded_duplicate, 0u);
  EXPECT_EQ(p(2).delivered_count(), 1u);
}

TEST_F(AdversarialTest, ObsoleteViaThirdPartyEntryEndToEnd) {
  // A message from a NON-failed process is discarded because it depends on
  // the failed process's lost states (Lemma 4 scans all clock entries).
  p(1).on_message(craft(0, 1, p(0).clock(), encode_sends({{2, leaf()}}), 1));
  const Message via = tapped.back();  // P1 -> P2, depends on P1's doomed state
  p(2).on_message(via);               // P2 delivers (no token yet)
  // P2's handler did not send, but craft one from P2's orphan state to P0:
  p(2).on_message(craft(1, 2, p(2).clock(), encode_sends({{0, leaf()}}), 2));
  const Message from_orphan = tapped.back();

  const Token token = crash_and_token(1);
  p(0).on_token(token);
  p(0).on_message(from_orphan);
  EXPECT_EQ(metrics.messages_discarded_obsolete, 1u)
      << "P2 never failed, yet its message is obsolete through P1's entry";
  EXPECT_EQ(p(0).delivered_count(), 0u);
}

TEST_F(AdversarialTest, RollbackPicksDeepestConsistentCheckpoint) {
  // Three checkpoints at increasing dependency on P1; the token invalidates
  // only the newest: rollback must restore the middle one, not the oldest.
  p(1).on_message(craft(2, 1, p(2).clock(), encode_sends({{0, leaf()}}), 1));
  const Message safe = tapped.back();  // P1 ts low: survives the failure
  p(1).storage().log().flush();        // make it part of the restored state

  p(0).on_message(safe);
  p(0).storage().log().flush();
  // (checkpoint_interval is 0; force a checkpoint via another delivered
  //  message + manual flush and rely on rollback replay instead.)
  p(1).on_message(craft(2, 1, p(2).clock(), encode_sends({{0, leaf()}}), 2));
  const Message doomed = tapped.back();  // P1 unlogged from here on
  p(0).on_message(doomed);

  const Token token = crash_and_token(1);
  ASSERT_EQ(token.failed.ver, 0u);
  p(0).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 1u);
  // The safe (logged+replayable) delivery survives; only the doomed one is
  // undone and re-filtered.
  EXPECT_EQ(p(0).delivered_count(), 1u);
  settle();
  EXPECT_EQ(metrics.messages_discarded_obsolete, 1u);
}

}  // namespace
}  // namespace optrec
