// Failure-free integration tests for the Damani-Garg protocol: quiescence,
// determinism, ordering-independence, and the "no control messages during
// failure-free operation" property of Section 6.9.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace optrec {
namespace {

ScenarioConfig base_config(std::uint64_t seed = 42) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = seed;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 4;
  config.workload.depth = 24;
  return config;
}

TEST(DgBasicTest, FailureFreeRunQuiesces) {
  const auto result = run_experiment(base_config());
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.metrics.messages_delivered, 0u);
  EXPECT_EQ(result.metrics.crashes, 0u);
  EXPECT_EQ(result.metrics.rollbacks, 0u);
  EXPECT_EQ(result.metrics.messages_discarded_obsolete, 0u);
}

TEST(DgBasicTest, NoControlTrafficFailureFree) {
  // Section 6.9: "Except application messages, the protocol causes no extra
  // messages to be sent during failure-free run."
  const auto result = run_experiment(base_config());
  EXPECT_EQ(result.metrics.control_messages_sent, 0u);
  EXPECT_EQ(result.net.tokens_sent, 0u);
}

TEST(DgBasicTest, PiggybackCarriedOnEveryMessage) {
  const auto result = run_experiment(base_config());
  EXPECT_GT(result.metrics.piggyback_per_message(), 0.0);
  // O(n) entries of a few bytes each: sane bounds for n=4.
  EXPECT_LT(result.metrics.piggyback_per_message(), 128.0);
}

TEST(DgBasicTest, DeterministicForSeed) {
  const auto a = run_experiment(base_config(7));
  const auto b = run_experiment(base_config(7));
  EXPECT_EQ(a.metrics.messages_delivered, b.metrics.messages_delivered);
  EXPECT_EQ(a.metrics.app_messages_sent, b.metrics.app_messages_sent);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.oracle_states, b.oracle_states);
}

TEST(DgBasicTest, SeedsChangeTheRun) {
  // Different seeds route jobs differently; compare per-process delivery
  // distribution (totals are identical by construction).
  Scenario a(base_config(1)), b(base_config(2));
  ASSERT_TRUE(a.run());
  ASSERT_TRUE(b.run());
  bool differs = false;
  for (ProcessId pid = 0; pid < a.size(); ++pid) {
    if (a.process(pid).delivered_count() != b.process(pid).delivered_count()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DgBasicTest, WorksOnFifoAndNonFifoNetworks) {
  for (bool fifo : {false, true}) {
    auto config = base_config(9);
    config.network.fifo = fifo;
    const auto result = run_experiment(config);
    EXPECT_TRUE(result.quiesced) << "fifo=" << fifo;
    EXPECT_TRUE(result.violations.empty()) << "fifo=" << fifo;
  }
}

TEST(DgBasicTest, ToleratesMessageLoss) {
  auto config = base_config(11);
  config.workload.intensity = 8;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.network.drop_prob = 0.08;
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.net.messages_dropped, 0u);
}

TEST(DgBasicTest, CheckpointsAndFlushesHappen) {
  auto config = base_config(13);
  config.workload.depth = 64;
  config.workload.intensity = 8;
  const auto result = run_experiment(config);
  // One initial checkpoint per process plus timer-driven ones.
  EXPECT_GE(result.metrics.checkpoints_taken, config.n);
  EXPECT_GT(result.metrics.log_flushes, 0u);
}

TEST(DgBasicTest, AllWorkloadsQuiesceConsistently) {
  for (WorkloadKind kind : {WorkloadKind::kCounter, WorkloadKind::kPingPong,
                            WorkloadKind::kBank, WorkloadKind::kGossip}) {
    auto config = base_config(17);
    config.workload.kind = kind;
    const auto result = run_experiment(config);
    EXPECT_TRUE(result.quiesced) << config.workload.name();
    EXPECT_TRUE(result.violations.empty()) << config.workload.name();
    EXPECT_GT(result.metrics.messages_delivered, 0u) << config.workload.name();
  }
}

TEST(DgBasicTest, ScalesToMoreProcesses) {
  auto config = base_config(19);
  config.n = 12;
  config.workload.all_seed = true;
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
}

TEST(DgBasicTest, TwoProcessMinimum) {
  auto config = base_config(21);
  config.n = 2;
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
}

}  // namespace
}  // namespace optrec
