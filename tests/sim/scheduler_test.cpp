#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace optrec {
namespace {

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  while (s.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(SchedulerTest, TiesFireInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  while (s.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler s;
  s.schedule_at(50, [] {});
  s.step();
  bool fired = false;
  s.schedule_at(10, [&] { fired = true; });  // in the past
  s.step();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 50u);  // time never goes backwards
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(10, [&] { fired = true; });
  s.cancel(id);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.step());
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelUnknownIsNoop) {
  Scheduler s;
  s.cancel(0);
  s.cancel(9999);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, CancelledEventsSkippedInNextTime) {
  Scheduler s;
  const EventId early = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  s.cancel(early);
  EXPECT_EQ(s.next_time(), 20u);
}

TEST(SchedulerTest, CallbackMaySchedule) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&] {
    ++fired;
    s.schedule_at(20, [&] { ++fired; });
  });
  while (s.step()) {
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20u);
}

TEST(SchedulerTest, PendingCountTracksCancel) {
  Scheduler s;
  const EventId a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(a);  // double-cancel must not double-decrement
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SimulationTest, RunUntilLimit) {
  Simulation sim(1);
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(200, [&] { ++fired; });
  const auto result = sim.run(150);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(result.quiesced);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, QuiescesWhenDrained) {
  Simulation sim(1);
  sim.schedule_at(5, [] {});
  const auto result = sim.run();
  EXPECT_TRUE(result.quiesced);
  EXPECT_EQ(result.events_executed, 1u);
}

TEST(SimulationTest, MaxEventsLimit) {
  Simulation sim(1);
  std::function<void()> reschedule = [&] {
    sim.schedule_after(1, reschedule);
  };
  sim.schedule_at(0, reschedule);
  const auto result = sim.run(kSimTimeMax, 50);
  EXPECT_EQ(result.events_executed, 50u);
  EXPECT_FALSE(result.quiesced);
}

TEST(SimulationTest, ScheduleAfterUsesNow) {
  Simulation sim(1);
  SimTime fired_at = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150u);
}

}  // namespace
}  // namespace optrec
