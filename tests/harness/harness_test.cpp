// Tests for the experiment harness itself: failure plans, the scenario
// quiescence detector, the metrics helpers, the table printer — plus a
// parameterized cross-protocol sanity sweep.
#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

namespace optrec {
namespace {

TEST(FailurePlanTest, SingleCrash) {
  const auto plan = FailurePlan::single(2, millis(40));
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].pid, 2u);
  EXPECT_EQ(plan.crashes[0].at, millis(40));
}

TEST(FailurePlanTest, RandomPlanWithinWindow) {
  Rng rng(5);
  const auto plan = FailurePlan::random(rng, 6, 10, millis(10), millis(90));
  ASSERT_EQ(plan.crashes.size(), 10u);
  SimTime prev = 0;
  for (const auto& c : plan.crashes) {
    EXPECT_LT(c.pid, 6u);
    EXPECT_GE(c.at, millis(10));
    EXPECT_LE(c.at, millis(90));
    EXPECT_GE(c.at, prev) << "crashes sorted by time";
    prev = c.at;
  }
}

TEST(FailurePlanTest, ConcurrentPlanSharesInstant) {
  Rng rng(7);
  const auto plan =
      FailurePlan::random(rng, 4, 3, millis(10), millis(90), true);
  ASSERT_EQ(plan.crashes.size(), 3u);
  EXPECT_EQ(plan.crashes[0].at, plan.crashes[1].at);
  EXPECT_EQ(plan.crashes[1].at, plan.crashes[2].at);
}

TEST(FailurePlanTest, EmptyPlans) {
  Rng rng(9);
  EXPECT_TRUE(FailurePlan::random(rng, 0, 5, 0, 1).crashes.empty());
  EXPECT_TRUE(FailurePlan::random(rng, 4, 0, 0, 1).crashes.empty());
  EXPECT_TRUE(FailurePlan::none().crashes.empty());
}

TEST(MetricsTest, RollbackAttribution) {
  Metrics m;
  m.count_rollback({1, 0}, 2);
  m.count_rollback({1, 0}, 3);
  m.count_rollback({1, 0}, 3);  // P3 rolled back twice for the same failure
  m.count_rollback({4, 2}, 0);
  EXPECT_EQ(m.rollbacks, 4u);
  EXPECT_EQ(m.max_rollbacks_per_process_per_failure(), 2u);
}

TEST(MetricsTest, PiggybackAverage) {
  Metrics m;
  EXPECT_EQ(m.piggyback_per_message(), 0.0);
  m.app_messages_sent = 4;
  m.piggyback_bytes = 100;
  EXPECT_DOUBLE_EQ(m.piggyback_per_message(), 25.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long-header", "c"});
  table.add_row({"xxxxxx", "1", "2"});
  table.add_row({"y"});  // short rows padded
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx"), std::string::npos);
  // Every line of the body is at least as wide as the widest row.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}

TEST(ScenarioTest, RejectsTooFewProcesses) {
  ScenarioConfig config;
  config.n = 1;
  EXPECT_THROW(Scenario scenario(config), std::invalid_argument);
}

TEST(ScenarioTest, DgAccessorChecksProtocol) {
  ScenarioConfig config;
  config.protocol = ProtocolKind::kPessimistic;
  Scenario scenario(config);
  EXPECT_THROW(scenario.dg(0), std::logic_error);
}

TEST(ScenarioTest, RunForAllowsMidRunInspection) {
  ScenarioConfig config;
  config.workload.intensity = 4;
  config.workload.depth = 64;
  Scenario scenario(config);
  scenario.run_for(millis(5));
  const auto early = scenario.metrics().messages_delivered;
  scenario.run_for(millis(200));
  EXPECT_GT(scenario.metrics().messages_delivered, early);
}

TEST(ScenarioTest, TimeCapReportsNonQuiescence) {
  ScenarioConfig config;
  config.workload.intensity = 8;
  config.workload.depth = 2000;  // far more work than the cap allows
  config.workload.all_seed = true;
  config.time_cap = millis(50);
  Scenario scenario(config);
  EXPECT_FALSE(scenario.run());
}

TEST(ExperimentTest, GoodputComputation) {
  ExperimentResult result;
  result.end_time = seconds(2);
  result.metrics.messages_delivered = 500;
  EXPECT_DOUBLE_EQ(result.delivered_per_sim_second(), 250.0);
}

// Parameterized cross-protocol smoke sweep: every protocol must quiesce
// consistently on every workload, failure-free.
struct ProtocolWorkload {
  ProtocolKind protocol;
  WorkloadKind workload;
};

class CrossProtocolSweep : public ::testing::TestWithParam<ProtocolWorkload> {};

TEST_P(CrossProtocolSweep, FailureFreeQuiescesConsistently) {
  const auto& p = GetParam();
  ScenarioConfig config;
  config.protocol = p.protocol;
  config.workload.kind = p.workload;
  config.workload.intensity = 3;
  config.workload.depth = 16;
  config.seed = 99;
  const auto result = run_experiment(config);
  EXPECT_TRUE(result.quiesced);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.metrics.messages_delivered, 0u);
}

std::vector<ProtocolWorkload> cross_product() {
  std::vector<ProtocolWorkload> out;
  for (ProtocolKind protocol :
       {ProtocolKind::kDamaniGarg, ProtocolKind::kPessimistic,
        ProtocolKind::kCoordinated, ProtocolKind::kSenderBased,
        ProtocolKind::kCascading, ProtocolKind::kPetersonKearns,
        ProtocolKind::kPlain}) {
    for (WorkloadKind workload :
         {WorkloadKind::kCounter, WorkloadKind::kPingPong, WorkloadKind::kBank,
          WorkloadKind::kGossip}) {
      out.push_back({protocol, workload});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CrossProtocolSweep, ::testing::ValuesIn(cross_product()),
    [](const ::testing::TestParamInfo<ProtocolWorkload>& info) {
      WorkloadSpec spec;
      spec.kind = info.param.workload;
      std::string name = protocol_name(info.param.protocol);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + spec.name();
    });

}  // namespace
}  // namespace optrec
