// Focused unit tests for the Metrics helpers (the cross-protocol behaviour
// is exercised by harness_test.cpp; these pin down the arithmetic).
#include <gtest/gtest.h>

#include "src/harness/metrics.h"

namespace optrec {
namespace {

TEST(MetricsSummaryTest, EmptyMetrics) {
  const Metrics m;
  EXPECT_EQ(m.summary(),
            "sent=0 delivered=0 obsolete=0 postponed=0 crashes=0 rollbacks=0 "
            "replayed=0 ckpts=0 piggyback/msg=0");
}

TEST(MetricsSummaryTest, ReflectsCounters) {
  Metrics m;
  m.app_messages_sent = 10;
  m.messages_delivered = 9;
  m.messages_discarded_obsolete = 2;
  m.messages_postponed = 3;
  m.crashes = 1;
  m.count_rollback({0, 0}, 1);
  m.messages_replayed = 4;
  m.checkpoints_taken = 5;
  m.piggyback_bytes = 25;
  EXPECT_EQ(m.summary(),
            "sent=10 delivered=9 obsolete=2 postponed=3 crashes=1 rollbacks=1 "
            "replayed=4 ckpts=5 piggyback/msg=2.5");
}

TEST(MetricsMaxRollbacksTest, ZeroWithoutRollbacks) {
  const Metrics m;
  EXPECT_EQ(m.max_rollbacks_per_process_per_failure(), 0u);
}

TEST(MetricsMaxRollbacksTest, OnePerProcessPerFailure) {
  Metrics m;
  // Two distinct failures, each rolling back three distinct processes once:
  // the Damani-Garg guarantee shape.
  for (ProcessId who : {1u, 2u, 3u}) m.count_rollback({0, 0}, who);
  for (ProcessId who : {0u, 2u, 3u}) m.count_rollback({1, 4}, who);
  EXPECT_EQ(m.rollbacks, 6u);
  EXPECT_EQ(m.max_rollbacks_per_process_per_failure(), 1u);
}

TEST(MetricsMaxRollbacksTest, MaxIsPerProcessNotPerFailure) {
  Metrics m;
  // Failure (0,0) causes four rollbacks total but no process repeats, while
  // failure (5,1) makes P2 roll back three times (a cascade). The metric
  // must report the repeat count, not the per-failure total.
  for (ProcessId who : {1u, 2u, 3u, 4u}) m.count_rollback({0, 0}, who);
  for (int i = 0; i < 3; ++i) m.count_rollback({5, 1}, 2);
  EXPECT_EQ(m.max_rollbacks_per_process_per_failure(), 3u);
}

TEST(MetricsMaxRollbacksTest, DistinguishesFailuresByVersion) {
  Metrics m;
  // Same process failing twice (versions 0 and 1) rolls P3 back once each:
  // two failures, not one failure with two rollbacks.
  m.count_rollback({0, 0}, 3);
  m.count_rollback({0, 1}, 3);
  EXPECT_EQ(m.rollbacks, 2u);
  EXPECT_EQ(m.max_rollbacks_per_process_per_failure(), 1u);
}

TEST(MetricsPiggybackTest, PerMessageAverage) {
  Metrics m;
  EXPECT_EQ(m.piggyback_per_message(), 0.0);  // no division by zero
  m.app_messages_sent = 4;
  m.piggyback_bytes = 100;
  EXPECT_DOUBLE_EQ(m.piggyback_per_message(), 25.0);
}

TEST(MetricsMergeTest, CountersStatsAndAttributionCombine) {
  Metrics a, b;
  a.app_messages_sent = 3;
  a.piggyback_bytes = 30;
  a.restart_latency.add(10.0);
  a.count_rollback({0, 1}, 2);
  b.app_messages_sent = 7;
  b.piggyback_bytes = 70;
  b.restart_latency.add(20.0);
  b.count_rollback({0, 1}, 2);
  b.count_rollback({1, 0}, 4);
  a.merge_from(b);
  EXPECT_EQ(a.app_messages_sent, 10u);
  EXPECT_EQ(a.piggyback_bytes, 100u);
  EXPECT_EQ(a.restart_latency.count(), 2u);
  EXPECT_DOUBLE_EQ(a.restart_latency.mean(), 15.0);
  EXPECT_EQ(a.rollbacks, 3u);
  // P2 rolled back once in each half for failure (0,1): counts add to 2.
  EXPECT_EQ(a.max_rollbacks_per_process_per_failure(), 2u);
}

}  // namespace
}  // namespace optrec
