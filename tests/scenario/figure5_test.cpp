// Reproduction of paper Figure 5 (Section 6.6): the worked recovery example.
//
//  * P1 fails; its unlogged receipt is lost; it restarts and announces the
//    failure with token (0, t).
//  * m2, sent by P1's new incarnation, reaches P0 BEFORE the token: P0 must
//    postpone its delivery (it has no token for version 0 yet).
//  * The token reaches P0, which discovers it is an orphan (it delivered m1
//    from a lost state), rolls back once, then delivers the held m2.
//  * m0, sent by a lost state of P1, reaches P2 AFTER the token: P2 discards
//    it as obsolete. Had P2 accepted it, P2 could never have rolled it back
//    (the paper's closing observation in Section 6.6).
#include <gtest/gtest.h>

#include "../support/script_app.h"
#include "src/core/dg_process.h"
#include "src/harness/metrics.h"
#include "src/net/network.h"
#include "src/sim/simulation.h"

namespace optrec {
namespace {

using testing::craft;
using testing::encode_sends;
using testing::leaf;
using testing::ScriptApp;

class Figure5Test : public ::testing::Test {
 protected:
  explicit Figure5Test(bool discard_suffix = false) : sim(11), net(sim, far()) {
    net.set_message_tap([this](const Message& m) { tapped.push_back(m); });
    net.set_token_tap([this](const Token& t) { tokens.push_back(t); });
    ProcessConfig config;
    config.checkpoint_interval = 0;
    config.flush_interval = 0;
    config.restart_delay = millis(5);
    config.discard_rollback_suffix = discard_suffix;
    for (ProcessId pid = 0; pid < 3; ++pid) {
      procs.push_back(std::make_unique<DamaniGargProcess>(
          RuntimeEnv(sim, sim, net), pid, 3, std::make_unique<ScriptApp>(), config, metrics,
          nullptr));
    }
    for (auto& p : procs) {
      sim.schedule_at(0, [&p] { p->start(); });
    }
    sim.run(1);
  }

  static NetworkConfig far() {
    NetworkConfig config;
    config.min_delay = config.max_delay = seconds(3600);
    return config;
  }

  DamaniGargProcess& p(ProcessId pid) { return *procs[pid]; }

  /// Drive the common prefix: P1 handles a command (lost later), sending
  /// m0 -> P2 and m1 -> P0; P0 delivers m1; P1 crashes and restarts; the
  /// new incarnation sends m2 -> P0.
  void drive_prefix() {
    // P1's doomed handler sends m0 to P2 and m1 to P0.
    p(1).on_message(
        craft(0, 1, p(0).clock(), encode_sends({{2, leaf()}, {0, leaf()}}), 1));
    ASSERT_EQ(tapped.size(), 2u);
    m0 = tapped[0];
    m1 = tapped[1];
    ASSERT_EQ(m0.dst, 2u);
    ASSERT_EQ(m1.dst, 0u);

    // m1 arrives at P0 and is delivered: P0 now depends on a doomed state.
    p(0).on_message(m1);
    EXPECT_EQ(p(0).delivered_count(), 1u);

    // f10: P1 fails with the receipt unlogged; restart announces (0, 1).
    p(1).crash();
    sim.run(sim.now() + millis(10));
    ASSERT_EQ(tokens.size(), 1u);
    token = tokens[0];
    EXPECT_EQ(token.failed, (FtvcEntry{0, 1}));
    EXPECT_EQ(p(1).version(), 1u);

    // P1's new incarnation sends m2 to P0.
    p(1).on_message(craft(2, 1, p(2).clock(), encode_sends({{0, leaf()}}), 2));
    ASSERT_EQ(tapped.size(), 3u);
    m2 = tapped[2];
    ASSERT_EQ(m2.dst, 0u);
    EXPECT_EQ(m2.clock.entry(1).ver, 1u);
  }

  Simulation sim;
  Network net;
  Metrics metrics;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  std::vector<Message> tapped;
  std::vector<Token> tokens;
  Message m0, m1, m2;
  Token token;
};

TEST_F(Figure5Test, M2PostponedUntilToken) {
  drive_prefix();
  // m2 overtakes the token (no ordering assumptions!): P0 must hold it.
  p(0).on_message(m2);
  EXPECT_EQ(metrics.messages_postponed, 1u);
  EXPECT_EQ(p(0).pending_count(), 1u);
  EXPECT_EQ(p(0).delivered_count(), 1u) << "m2 not delivered yet";
}

TEST_F(Figure5Test, TokenTriggersRollbackAndReleasesM2) {
  drive_prefix();
  p(0).on_message(m2);

  // Token arrives at P0: orphan detected (its history holds (mes,0,3)-ish
  // knowledge of P1 beyond the restored point), single rollback, m2 then
  // delivered from the hold queue.
  p(0).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 1u);
  EXPECT_EQ(metrics.postponed_released, 1u);
  EXPECT_EQ(p(0).pending_count(), 0u);
  EXPECT_EQ(p(0).delivered_count(), 1u) << "m1 undone, m2 delivered";
  EXPECT_EQ(p(0).clock().entry(1).ver, 1u)
      << "P0 now depends on P1's new incarnation";

  // The rolled-back suffix (m1) is re-enqueued, re-checked, and discarded
  // as obsolete.
  sim.run(sim.now() + millis(2));
  EXPECT_EQ(metrics.messages_discarded_obsolete, 1u);
  EXPECT_EQ(metrics.messages_requeued_after_rollback, 1u);

  // A second delivery of the same token-conditions cannot roll back again:
  // at most one rollback per failure (Theorem 3, minimal rollback).
  EXPECT_EQ(metrics.max_rollbacks_per_process_per_failure(), 1u);
}

TEST_F(Figure5Test, ObsoleteM0DiscardedAtP2) {
  drive_prefix();
  // Token first, then the stale m0: P2 detects obsoleteness and discards.
  p(2).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 0u) << "P2 never depended on the lost state";
  p(2).on_message(m0);
  EXPECT_EQ(metrics.messages_discarded_obsolete, 1u);
  EXPECT_EQ(p(2).delivered_count(), 0u);
}

TEST_F(Figure5Test, WithoutTokenM0WouldOrphanP2ThenTokenFixesIt) {
  drive_prefix();
  // Reverse order: m0 slips in before the token (the paper's cautionary
  // variant) — P2 accepts it and becomes an orphan; the token then forces
  // exactly one rollback.
  p(2).on_message(m0);
  EXPECT_EQ(p(2).delivered_count(), 1u);
  p(2).on_token(token);
  EXPECT_EQ(metrics.rollbacks, 1u);
  EXPECT_EQ(p(2).delivered_count(), 0u);
}

class Figure5LiteralTrTest : public Figure5Test {
 protected:
  Figure5LiteralTrTest() : Figure5Test(/*discard_suffix=*/true) {}
};

TEST_F(Figure5LiteralTrTest, LiteralModeDropsSuffixInsteadOfRequeue) {
  drive_prefix();
  p(0).on_message(m2);
  p(0).on_token(token);
  sim.run(sim.now() + millis(2));
  EXPECT_EQ(metrics.messages_requeued_after_rollback, 0u);
  EXPECT_EQ(metrics.messages_discarded_obsolete, 0u)
      << "suffix was dropped silently, never re-checked";
  EXPECT_EQ(p(0).delivered_count(), 1u);  // m2 still delivered
}

}  // namespace
}  // namespace optrec
