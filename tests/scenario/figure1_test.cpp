// Reproduction of paper Figure 1: the FTVC of a three-process computation in
// which P1 fails and restarts, P2 becomes an orphan and rolls back, and the
// boxed clock values of the figure (notably r10 = [(0,1) (1,0) (0,0)]) come
// out of the implementation, along with the Section 4.1 caveat that FTVC
// order is meaningless for non-useful states (r20.c < s22.c yet r20 -/-> s22).
#include <gtest/gtest.h>

#include "../support/script_app.h"
#include "src/core/dg_process.h"
#include "src/harness/metrics.h"
#include "src/net/network.h"
#include "src/sim/simulation.h"

namespace optrec {
namespace {

using testing::craft;
using testing::encode_sends;
using testing::leaf;
using testing::ScriptApp;

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() : sim(7), net(sim, far_network()) {
    net.set_message_tap([this](const Message& m) { tapped.push_back(m); });
    net.set_token_tap([this](const Token& t) { tokens.push_back(t); });
    ProcessConfig config;
    config.checkpoint_interval = 0;  // only the initial checkpoint
    config.flush_interval = 0;       // flush only when the test says so
    config.restart_delay = millis(5);
    for (ProcessId pid = 0; pid < 3; ++pid) {
      procs.push_back(std::make_unique<DamaniGargProcess>(
          RuntimeEnv(sim, sim, net), pid, 3, std::make_unique<ScriptApp>(), config, metrics,
          nullptr));
    }
    for (auto& p : procs) {
      sim.schedule_at(0, [&p] { p->start(); });
    }
    sim.run(1);
  }

  static NetworkConfig far_network() {
    NetworkConfig config;
    config.min_delay = config.max_delay = seconds(3600);
    return config;
  }

  DamaniGargProcess& p(ProcessId pid) { return *procs[pid]; }

  Simulation sim;
  Network net;
  Metrics metrics;
  std::vector<std::unique_ptr<DamaniGargProcess>> procs;
  std::vector<Message> tapped;
  std::vector<Token> tokens;
};

TEST_F(Figure1Test, InitialClocksMatchFigure) {
  EXPECT_EQ(p(0).clock().to_string(), "[(0,1) (0,0) (0,0)]");
  EXPECT_EQ(p(1).clock().to_string(), "[(0,0) (0,1) (0,0)]");
  EXPECT_EQ(p(2).clock().to_string(), "[(0,0) (0,0) (0,1)]");
}

TEST_F(Figure1Test, FullFigure1Computation) {
  // s00 -> s11: P0's first send reaches P1.
  p(1).on_message(craft(0, 1, p(0).clock(), leaf(), 1));
  EXPECT_EQ(p(1).clock().to_string(), "[(0,1) (0,2) (0,0)]");  // s11

  // Make s11 recoverable (the figure restores s11 after the failure).
  p(1).storage().log().flush();

  // P0's second send -> s12 at P1, whose handler sends to P2.
  Ftvc p0_second(0, 3);
  // Simulate P0 having ticked once already: its second send carries (0,2).
  p0_second.tick_send();
  p(1).on_message(craft(0, 1, p0_second, encode_sends({{2, leaf()}}), 2));
  // s12 delivered at ts 3; the send inside the handler ticked to 4.
  EXPECT_EQ(p(1).clock().entry(1), (FtvcEntry{0, 4}));
  ASSERT_EQ(tapped.size(), 1u);
  const Message to_p2 = tapped[0];
  EXPECT_EQ(to_p2.clock.to_string(), "[(0,2) (0,3) (0,0)]");

  // s22: P2 receives the message sent from the (soon lost) state s12.
  p(2).on_message(to_p2);
  const Ftvc s22 = p(2).clock();
  EXPECT_EQ(s22.to_string(), "[(0,2) (0,3) (0,2)]");

  // f10: P1 fails. Restore = initial checkpoint + stable log (exactly s11);
  // the receipt of the second message was unlogged and is lost.
  p(1).crash();
  sim.run(sim.now() + millis(10));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].from, 1u);
  EXPECT_EQ(tokens[0].failed, (FtvcEntry{0, 2}))
      << "token carries (failed version, restored timestamp of s11)";

  // r10: the figure's box is [(0,1) (1,0) (0,0)].
  EXPECT_EQ(p(1).clock().to_string(), "[(0,1) (1,0) (0,0)]");
  EXPECT_EQ(p(1).version(), 1u);
  EXPECT_EQ(metrics.messages_lost_in_crash, 1u);

  // P2 receives the token, discovers s22 is an orphan, rolls back; r20.
  p(2).on_token(tokens[0]);
  EXPECT_EQ(metrics.rollbacks, 1u);
  const Ftvc r20 = p(2).clock();
  EXPECT_EQ(r20.to_string(), "[(0,0) (0,0) (0,2)]");

  // Section 4.1: r20.c < s22.c even though r20 did NOT happen before s22 —
  // FTVC order is only meaningful between useful states; s22 is an orphan.
  EXPECT_TRUE(r20.less_than(s22));

  // Theorem 1 sanity between useful states: s11 (as restored) precedes r10.
  Ftvc s11(1, 3);
  Ftvc p0_first(0, 3);
  s11.merge_deliver(p0_first);
  EXPECT_TRUE(s11.less_than(p(1).clock()));
}

TEST_F(Figure1Test, RestartProtectsVersionWithNewCheckpoint) {
  p(1).on_message(craft(0, 1, p(0).clock(), leaf(), 1));
  p(1).storage().log().flush();
  p(1).crash();
  sim.run(sim.now() + millis(10));
  EXPECT_EQ(p(1).version(), 1u);
  // Section 6.2: a checkpoint is taken right after restart so the version
  // number survives another failure.
  EXPECT_EQ(p(1).storage().checkpoints().latest().version, 1u);

  // Fail again immediately: the version must keep increasing.
  p(1).crash();
  sim.run(sim.now() + millis(10));
  EXPECT_EQ(p(1).version(), 2u);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].failed.ver, 1u);
}

}  // namespace
}  // namespace optrec
