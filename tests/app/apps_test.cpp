// App-framework tests: serialization round trips and the piecewise-
// determinism contract (same state + same message => same actions), which
// replay-based recovery depends on.
#include <gtest/gtest.h>

#include <vector>

#include "src/app/bank_app.h"
#include "src/app/counter_app.h"
#include "src/app/gossip_app.h"
#include "src/app/pingpong_app.h"
#include "src/app/workload.h"
#include "src/util/bytes.h"

namespace optrec {
namespace {

/// Records sends instead of transmitting.
class RecordingContext : public AppContext {
 public:
  RecordingContext(ProcessId self, std::size_t n) : self_(self), n_(n) {}
  ProcessId self() const override { return self_; }
  std::size_t process_count() const override { return n_; }
  void send(ProcessId dst, const Bytes& payload) override {
    sends.push_back({dst, payload});
  }
  void output(const std::string& data) override { outputs.push_back(data); }

  std::vector<std::pair<ProcessId, Bytes>> sends;
  std::vector<std::string> outputs;

 private:
  ProcessId self_;
  std::size_t n_;
};

template <typename MakeApp>
void check_replay_determinism(MakeApp make_app) {
  auto a = make_app();
  auto b = make_app();
  RecordingContext ctx_a(0, 4), ctx_b(0, 4);
  a->on_start(ctx_a);
  b->on_start(ctx_b);
  ASSERT_EQ(ctx_a.sends.size(), ctx_b.sends.size());

  // Feed identical messages; snapshot mid-way; a third instance restored
  // from the snapshot must continue identically. (Copy first: handlers
  // append to the recorded send lists while we iterate.)
  const auto initial_sends = ctx_a.sends;
  for (const auto& [dst, payload] : initial_sends) {
    a->on_message(ctx_a, 1, payload);
    b->on_message(ctx_b, 1, payload);
  }
  EXPECT_EQ(fnv1a(a->snapshot()), fnv1a(b->snapshot()));

  auto c = make_app();
  c->restore(a->snapshot());
  RecordingContext ctx_c(0, 4);
  Bytes probe = ctx_a.sends.empty() ? Bytes{} : ctx_a.sends[0].second;
  if (!probe.empty()) {
    const std::size_t before_a = ctx_a.sends.size();
    a->on_message(ctx_a, 2, probe);
    c->on_message(ctx_c, 2, probe);
    const std::vector<std::pair<ProcessId, Bytes>> tail_a(
        ctx_a.sends.begin() + static_cast<std::ptrdiff_t>(before_a),
        ctx_a.sends.end());
    EXPECT_EQ(tail_a, ctx_c.sends);
    EXPECT_EQ(fnv1a(a->snapshot()), fnv1a(c->snapshot()));
  }
}

TEST(CounterAppTest, SeedsJobsFromP0Only) {
  CounterAppConfig config;
  config.initial_jobs = 3;
  CounterApp p0(0, 4, config), p1(1, 4, config);
  RecordingContext c0(0, 4), c1(1, 4);
  p0.on_start(c0);
  p1.on_start(c1);
  EXPECT_EQ(c0.sends.size(), 3u);
  EXPECT_TRUE(c1.sends.empty());
}

TEST(CounterAppTest, AllSeedMode) {
  CounterAppConfig config;
  config.initial_jobs = 2;
  config.all_seed = true;
  CounterApp p2(2, 4, config);
  RecordingContext ctx(2, 4);
  p2.on_start(ctx);
  EXPECT_EQ(ctx.sends.size(), 2u);
}

TEST(CounterAppTest, NeverSendsToSelf) {
  CounterAppConfig config;
  config.initial_jobs = 50;
  config.hops = 0;
  CounterApp app(2, 3, config);
  RecordingContext ctx(2, 3);
  CounterAppConfig seed_config = config;
  seed_config.all_seed = true;
  CounterApp seeder(2, 3, seed_config);
  seeder.on_start(ctx);
  for (const auto& [dst, payload] : ctx.sends) {
    EXPECT_NE(dst, 2u);
    EXPECT_LT(dst, 3u);
  }
}

TEST(CounterAppTest, HopsDecrementToQuiescence) {
  CounterAppConfig config;
  CounterApp app(1, 4, config);
  RecordingContext ctx(1, 4);
  // hops=1 payload: handling forwards once with hops=0; that one is final.
  CounterApp seeder(0, 4, {1, 1, false, 0, 0});
  RecordingContext seed_ctx(0, 4);
  seeder.on_start(seed_ctx);
  ASSERT_EQ(seed_ctx.sends.size(), 1u);
  app.on_message(ctx, 0, seed_ctx.sends[0].second);
  ASSERT_EQ(ctx.sends.size(), 1u);
  CounterApp sink(2, 4, config);
  RecordingContext sink_ctx(2, 4);
  sink.on_message(sink_ctx, 1, ctx.sends[0].second);
  EXPECT_TRUE(sink_ctx.sends.empty()) << "hop budget exhausted";
}

TEST(CounterAppTest, PayloadPadControlsMessageSize) {
  CounterAppConfig small_config;
  small_config.payload_pad = 0;
  CounterAppConfig big_config;
  big_config.payload_pad = 512;
  CounterApp small(0, 2, small_config), big(0, 2, big_config);
  RecordingContext cs(0, 2), cb(0, 2);
  small.on_start(cs);
  big.on_start(cb);
  ASSERT_FALSE(cs.sends.empty());
  EXPECT_GT(cb.sends[0].second.size(), cs.sends[0].second.size() + 500);
}

TEST(CounterAppTest, OutputEvery) {
  CounterAppConfig config;
  config.output_every = 2;
  config.hops = 0;
  CounterApp app(1, 2, config);
  RecordingContext ctx(1, 2);
  CounterApp seeder(0, 2, {4, 0, false, 0, 0});
  RecordingContext seed_ctx(0, 2);
  seeder.on_start(seed_ctx);
  for (const auto& [dst, payload] : seed_ctx.sends) {
    app.on_message(ctx, 0, payload);
  }
  EXPECT_EQ(ctx.outputs.size(), 2u);  // after messages 2 and 4
}

TEST(CounterAppTest, ReplayDeterminism) {
  check_replay_determinism([] {
    CounterAppConfig config;
    config.initial_jobs = 4;
    config.hops = 8;
    return std::make_unique<CounterApp>(0, 4, config);
  });
}

TEST(BankAppTest, TransfersDebitSender) {
  BankAppConfig config;
  config.initial_balance = 100;
  config.initial_transfers = 2;
  BankApp app(0, 3, config);
  RecordingContext ctx(0, 3);
  app.on_start(ctx);
  std::int64_t in_flight = 0;
  for (const auto& [dst, payload] : ctx.sends) {
    in_flight += BankApp::decode_amount(payload);
  }
  EXPECT_EQ(app.balance() + in_flight, 100);
  EXPECT_GT(in_flight, 0);
}

TEST(BankAppTest, ReceiptCreditsAndMayForward) {
  BankAppConfig config;
  config.initial_balance = 100;
  BankApp sender(0, 3, config), receiver(1, 3, config);
  RecordingContext cs(0, 3), cr(1, 3);
  sender.on_start(cs);
  ASSERT_FALSE(cs.sends.empty());
  const std::int64_t amount = BankApp::decode_amount(cs.sends[0].second);
  receiver.on_message(cr, 0, cs.sends[0].second);
  std::int64_t forwarded = 0;
  for (const auto& [dst, payload] : cr.sends) {
    forwarded += BankApp::decode_amount(payload);
  }
  EXPECT_EQ(receiver.balance(), 100 + amount - forwarded);
}

TEST(BankAppTest, NeverOverdraws) {
  BankAppConfig config;
  config.initial_balance = 5;
  config.initial_transfers = 10;
  config.max_transfer = 50;
  BankApp app(0, 2, config);
  RecordingContext ctx(0, 2);
  app.on_start(ctx);
  EXPECT_GE(app.balance(), 0);
}

TEST(BankAppTest, ReplayDeterminism) {
  check_replay_determinism([] {
    BankAppConfig config;
    return std::make_unique<BankApp>(0, 4, config);
  });
}

TEST(PingPongAppTest, VolleyTerminatesAtLimit) {
  PingPongConfig config;
  config.rounds = 3;
  PingPongApp even(0, 2, config), odd(1, 2, config);
  RecordingContext c0(0, 2), c1(1, 2);
  even.on_start(c0);
  odd.on_start(c1);
  ASSERT_EQ(c0.sends.size(), 1u);
  EXPECT_TRUE(c1.sends.empty());

  // Bounce until quiet.
  std::vector<std::pair<ProcessId, Bytes>> wire = c0.sends;
  int deliveries = 0;
  while (!wire.empty() && deliveries < 100) {
    auto [dst, payload] = wire.front();
    wire.erase(wire.begin());
    RecordingContext ctx(dst, 2);
    (dst == 0 ? even : odd).on_message(ctx, 1 - dst, payload);
    for (auto& s : ctx.sends) wire.push_back(s);
    ++deliveries;
  }
  EXPECT_EQ(deliveries, 3);
  EXPECT_EQ(odd.last_round(), 3u);  // received rounds 1 and 3
  EXPECT_EQ(even.last_round(), 2u);
}

TEST(PingPongAppTest, TrailingOddProcessIdle) {
  PingPongConfig config;
  PingPongApp last(2, 3, config);
  RecordingContext ctx(2, 3);
  last.on_start(ctx);
  EXPECT_TRUE(ctx.sends.empty());
}

TEST(GossipAppTest, NewRumorForwardedOldAbsorbed) {
  GossipConfig config;
  config.fanout = 2;
  GossipApp a(0, 4, config), b(1, 4, config);
  RecordingContext ca(0, 4), cb(1, 4);
  a.on_start(ca);
  ASSERT_FALSE(ca.sends.empty());
  const Bytes rumor = ca.sends[0].second;
  b.on_message(cb, 0, rumor);
  EXPECT_EQ(cb.sends.size(), 2u);  // forwarded with fanout 2
  const std::size_t before = cb.sends.size();
  b.on_message(cb, 0, rumor);  // duplicate rumor
  EXPECT_EQ(cb.sends.size(), before) << "old news is absorbed";
}

TEST(GossipAppTest, KnowledgeIsMonotone) {
  GossipConfig config;
  GossipApp a(0, 3, config), b(1, 3, config);
  RecordingContext ca(0, 3), cb(1, 3);
  a.on_start(ca);
  const auto before = b.known();
  for (const auto& [dst, payload] : ca.sends) b.on_message(cb, 0, payload);
  const auto after = b.known();
  for (std::size_t j = 0; j < before.size(); ++j) {
    EXPECT_LE(before[j], after[j]);
  }
}

TEST(GossipAppTest, ReplayDeterminism) {
  check_replay_determinism([] {
    GossipConfig config;
    return std::make_unique<GossipApp>(0, 4, config);
  });
}

TEST(WorkloadSpecTest, FactoriesProduceApps) {
  for (WorkloadKind kind :
       {WorkloadKind::kCounter, WorkloadKind::kPingPong, WorkloadKind::kBank,
        WorkloadKind::kGossip}) {
    WorkloadSpec spec;
    spec.kind = kind;
    auto factory = spec.make_factory();
    auto app = factory(0, 4);
    ASSERT_NE(app, nullptr) << spec.name();
    EXPECT_FALSE(spec.name().empty());
  }
}

}  // namespace
}  // namespace optrec
