// Randomized history-mechanism sweep against a brute-force reference model.
//
// The reference keeps, per (process, version), the raw token timestamp (if
// any) and the maximum message timestamp observed — then answers Lemma 3/4
// queries by definition. The History implementation must agree on every
// query after every random observation sequence, including the token-record
// dominance rule and deliverability.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/history/history.h"
#include "src/util/rng.h"

namespace optrec {
namespace {

struct ReferenceModel {
  std::size_t n;
  // (pid, version) -> token timestamp.
  std::map<std::pair<ProcessId, Version>, Timestamp> tokens;
  // (pid, version) -> max message timestamp seen.
  std::map<std::pair<ProcessId, Version>, Timestamp> max_msg;

  explicit ReferenceModel(ProcessId owner, std::size_t count) : n(count) {
    for (ProcessId j = 0; j < n; ++j) max_msg[{j, 0}] = 0;
    max_msg[{owner, 0}] = 1;
  }

  void observe_clock(const Ftvc& clock) {
    for (ProcessId j = 0; j < n; ++j) {
      const FtvcEntry& e = clock.entry(j);
      auto& slot = max_msg[{j, e.ver}];
      slot = std::max(slot, e.ts);
    }
  }

  void observe_token(ProcessId j, FtvcEntry token) {
    // Mirror the implementation: for the same version, the earliest restored
    // point wins (re-announcements only strengthen).
    auto [it, inserted] = tokens.try_emplace({j, token.ver}, token.ts);
    if (!inserted) it->second = std::min(it->second, token.ts);
  }

  bool is_obsolete(const Ftvc& clock) const {
    for (ProcessId j = 0; j < n; ++j) {
      const FtvcEntry& e = clock.entry(j);
      auto it = tokens.find({j, e.ver});
      if (it != tokens.end() && e.ts > it->second) return true;
    }
    return false;
  }

  std::optional<std::pair<ProcessId, Version>> first_missing(
      const Ftvc& clock) const {
    for (ProcessId j = 0; j < n; ++j) {
      for (Version l = 0; l < clock.entry(j).ver; ++l) {
        if (tokens.find({j, l}) == tokens.end()) return {{j, l}};
      }
    }
    return std::nullopt;
  }

  bool makes_orphan(ProcessId j, FtvcEntry token) const {
    // Orphan iff we depend on a MESSAGE timestamp beyond the token, and the
    // version is not already capped by a token record (token dominance).
    if (tokens.find({j, token.ver}) != tokens.end()) return false;
    auto it = max_msg.find({j, token.ver});
    return it != max_msg.end() && it->second > token.ts;
  }
};

Ftvc random_clock(Rng& rng, std::size_t n, Version max_ver, Timestamp max_ts) {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(rng.uniform(n)));
  w.put_u32(static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    FtvcEntry e{static_cast<Version>(rng.uniform(max_ver + 1)),
                rng.uniform(max_ts)};
    e.encode(w);
  }
  Reader r(w.buffer());
  return Ftvc::decode(r);
}

class HistoryRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistoryRandomSweep, AgreesWithReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 2 + rng.uniform(4);
  const ProcessId owner = static_cast<ProcessId>(rng.uniform(n));
  constexpr Version kMaxVer = 3;
  constexpr Timestamp kMaxTs = 30;

  History history(owner, n);
  ReferenceModel reference(owner, n);

  for (int step = 0; step < 300; ++step) {
    const auto op = rng.uniform(10);
    if (op < 6) {
      const Ftvc clock = random_clock(rng, n, kMaxVer, kMaxTs);
      // The protocol only folds in clocks of DELIVERED messages; a message
      // is delivered only if not obsolete — mirror that gate so the two
      // models see identical inputs (the implementation's token-dominance
      // rule makes ungated folding diverge deliberately).
      if (!reference.is_obsolete(clock)) {
        history.observe_message_clock(clock);
        reference.observe_clock(clock);
      }
    } else {
      const auto j = static_cast<ProcessId>(rng.uniform(n));
      const FtvcEntry token{static_cast<Version>(rng.uniform(kMaxVer + 1)),
                            rng.uniform(kMaxTs)};
      // Query BEFORE recording, as the protocol does (Fig. 4).
      EXPECT_EQ(history.makes_orphan(j, token),
                reference.makes_orphan(j, token))
          << "step " << step;
      history.observe_token(j, token);
      reference.observe_token(j, token);
    }

    // Cross-check queries on a fresh random clock every step.
    const Ftvc probe = random_clock(rng, n, kMaxVer, kMaxTs);
    EXPECT_EQ(history.is_obsolete(probe), reference.is_obsolete(probe))
        << "step " << step << " probe " << probe.to_string();
    EXPECT_EQ(history.first_missing_token(probe), reference.first_missing(probe))
        << "step " << step;

    // Serialization round-trips preserve every answer.
    if (step % 50 == 49) {
      Writer w;
      history.encode(w);
      Reader r(w.buffer());
      EXPECT_EQ(History::decode(r), history);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistoryRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 11),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace optrec
