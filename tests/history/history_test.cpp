// Tests for the history mechanism: paper Figure 3, Lemmas 3-4, Section 6.1
// deliverability, and the DESIGN.md clarifications (token-record dominance).
#include "src/history/history.h"

#include <gtest/gtest.h>

#include "src/util/serialization.h"

namespace optrec {
namespace {

Ftvc clock_with(ProcessId owner, std::size_t n,
                std::vector<FtvcEntry> entries) {
  // Build an arbitrary clock via merge tricks is tedious; decode a crafted
  // encoding instead.
  Writer w;
  w.put_u32(owner);
  w.put_u32(static_cast<std::uint32_t>(n));
  for (const auto& e : entries) e.encode(w);
  Reader r(w.buffer());
  return Ftvc::decode(r);
}

TEST(HistoryTest, InitializationPerFigure3) {
  // "∀j : insert(history[j], (mes,0,0)); insert(history[i], (mes,0,1))"
  const History h(1, 3);
  EXPECT_EQ(h.record(0, 0), (HistoryRecord{RecordKind::kMessage, 0, 0}));
  EXPECT_EQ(h.record(1, 0), (HistoryRecord{RecordKind::kMessage, 0, 1}));
  EXPECT_EQ(h.record(2, 0), (HistoryRecord{RecordKind::kMessage, 0, 0}));
  EXPECT_FALSE(h.record(0, 1).has_value());
}

TEST(HistoryTest, MessageObservationKeepsMaxTimestamp) {
  History h(0, 2);
  h.observe_message_clock(clock_with(1, 2, {{0, 3}, {0, 5}}));
  EXPECT_EQ(h.record(1, 0)->ts, 5u);
  h.observe_message_clock(clock_with(1, 2, {{0, 1}, {0, 2}}));
  EXPECT_EQ(h.record(1, 0)->ts, 5u);  // lower ts does not regress
  h.observe_message_clock(clock_with(1, 2, {{0, 1}, {0, 9}}));
  EXPECT_EQ(h.record(1, 0)->ts, 9u);
}

TEST(HistoryTest, MessageObservationCreatesNewVersionRecords) {
  History h(0, 2);
  h.observe_message_clock(clock_with(1, 2, {{0, 1}, {2, 4}}));
  EXPECT_EQ(h.record(1, 2), (HistoryRecord{RecordKind::kMessage, 2, 4}));
  EXPECT_TRUE(h.record(1, 0).has_value());  // initial record kept
}

TEST(HistoryTest, TokenRecordsDominateMessageRecords) {
  // DESIGN.md: the TR's pseudocode would overwrite a token record with a
  // later message record; the prose (and correctness) require the token's
  // timestamp to persist.
  History h(0, 2);
  h.observe_token(1, {0, 7});
  EXPECT_TRUE(h.has_token(1, 0));
  h.observe_message_clock(clock_with(1, 2, {{0, 0}, {0, 5}}));
  EXPECT_TRUE(h.has_token(1, 0)) << "message must not clobber token record";
  EXPECT_EQ(h.record(1, 0)->ts, 7u);
}

TEST(HistoryTest, TokenReplacesMessageRecord) {
  History h(0, 2);
  h.observe_message_clock(clock_with(1, 2, {{0, 0}, {0, 5}}));
  h.observe_token(1, {0, 3});
  EXPECT_EQ(h.record(1, 0), (HistoryRecord{RecordKind::kToken, 0, 3}));
}

TEST(HistoryTest, Lemma4ObsoleteDetection) {
  // Message obsolete iff its clock entry exceeds a known token timestamp.
  History h(2, 3);
  h.observe_token(1, {0, 3});
  EXPECT_TRUE(h.is_obsolete(clock_with(1, 3, {{0, 0}, {0, 4}, {0, 0}})));
  EXPECT_FALSE(h.is_obsolete(clock_with(1, 3, {{0, 0}, {0, 3}, {0, 0}})))
      << "ts == token ts is the restored state itself: not lost";
  EXPECT_FALSE(h.is_obsolete(clock_with(1, 3, {{0, 0}, {1, 9}, {0, 0}})))
      << "a different (newer) version is not covered by this token";
}

TEST(HistoryTest, ObsoleteViaThirdPartyEntry) {
  // The obsolete check scans ALL entries: a message from P1 may be obsolete
  // because it depends on lost states of P2.
  History h(0, 3);
  h.observe_token(2, {0, 2});
  EXPECT_TRUE(h.is_obsolete(clock_with(1, 3, {{0, 0}, {0, 9}, {0, 5}})));
}

TEST(HistoryTest, DeliverabilityRequiresAllPredecessorTokens) {
  History h(0, 3);
  // Message references version 2 of P1: needs tokens for versions 0 and 1.
  const Ftvc m = clock_with(1, 3, {{0, 0}, {2, 1}, {0, 0}});
  auto missing = h.first_missing_token(m);
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(*missing, std::make_pair(ProcessId{1}, Version{0}));
  h.observe_token(1, {0, 5});
  missing = h.first_missing_token(m);
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(*missing, std::make_pair(ProcessId{1}, Version{1}));
  h.observe_token(1, {1, 2});
  EXPECT_TRUE(h.is_deliverable(m));
}

TEST(HistoryTest, VersionZeroNeedsNoToken) {
  const History h(0, 3);
  EXPECT_TRUE(h.is_deliverable(clock_with(1, 3, {{0, 5}, {0, 9}, {0, 2}})));
}

TEST(HistoryTest, Lemma3OrphanDetection) {
  // Orphan iff a *message* record exists with ts beyond the token's.
  History h(0, 2);
  h.observe_message_clock(clock_with(1, 2, {{0, 0}, {0, 5}}));
  EXPECT_TRUE(h.makes_orphan(1, {0, 4}));
  EXPECT_FALSE(h.makes_orphan(1, {0, 5}))
      << "dependence up to the restored point is fine";
  EXPECT_FALSE(h.makes_orphan(1, {1, 0}))
      << "token for a version we never depended on";
}

TEST(HistoryTest, TokenRecordNeverMakesOrphan) {
  History h(0, 2);
  h.observe_token(1, {0, 9});
  EXPECT_FALSE(h.makes_orphan(1, {0, 2}))
      << "token records cap dependence at the restored point";
}

TEST(HistoryTest, RecordOwnRestart) {
  History h(1, 2);
  h.record_own_restart({0, 6});
  EXPECT_TRUE(h.has_token(1, 0));
  EXPECT_EQ(h.record(1, 0)->ts, 6u);
}

TEST(HistoryTest, EncodeDecodeRoundTrip) {
  History h(1, 3);
  h.observe_message_clock(clock_with(0, 3, {{0, 4}, {0, 0}, {1, 2}}));
  h.observe_token(2, {0, 9});
  h.record_own_restart({0, 3});
  Writer w;
  h.encode(w);
  Reader r(w.buffer());
  const History back = History::decode(r);
  EXPECT_EQ(back, h);
}

TEST(HistoryTest, ByteSizeGrowsWithVersions) {
  History h(0, 4);
  const std::size_t base = h.byte_size();
  for (Version v = 0; v < 8; ++v) h.observe_token(2, {v, 1});
  EXPECT_GT(h.byte_size(), base);
}

TEST(HistoryTest, ConsistentWithTokenIsComplementOfOrphan) {
  History h(0, 2);
  h.observe_message_clock(clock_with(1, 2, {{0, 0}, {0, 8}}));
  EXPECT_FALSE(h.consistent_with_token(1, {0, 7}));
  EXPECT_TRUE(h.consistent_with_token(1, {0, 8}));
}

TEST(HistoryTest, RecordsForListsAscendingVersions) {
  History h(0, 2);
  h.observe_token(1, {2, 1});
  h.observe_token(1, {1, 5});
  const auto records = h.records_for(1);
  ASSERT_EQ(records.size(), 3u);  // initial v0 + v1 + v2
  EXPECT_EQ(records[0].ver, 0u);
  EXPECT_EQ(records[1].ver, 1u);
  EXPECT_EQ(records[2].ver, 2u);
}

TEST(HistoryTest, ClockSizeMismatchThrows) {
  History h(0, 2);
  EXPECT_THROW(h.observe_message_clock(clock_with(0, 3, {{0, 1}, {0, 0}, {0, 0}})),
               std::invalid_argument);
}

}  // namespace
}  // namespace optrec
