// Unit tests for the fleet-scale delta piggyback codec: byte-exact
// round-trips, diff-vs-full byte savings, ack-window discipline, and the
// respawn/reused-seq hazards the epoch+checksum binding exists to survive.
#include "src/scale/delta_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/wire/wire_codec.h"

namespace optrec::scale {
namespace {

Message make_msg(ProcessId src, ProcessId dst, Ftvc clock,
                 std::uint64_t send_seq = 1) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = src;
  m.dst = dst;
  m.src_version = 3;
  m.send_seq = send_seq;
  m.clock = std::move(clock);
  m.payload = Bytes{0xde, 0xad, 0xbe, 0xef};
  m.sender_state = 99;
  m.id = 1000 + send_seq;
  return m;
}

Ftvc ticked_clock(ProcessId owner, std::size_t n, std::uint64_t ticks) {
  Ftvc clock(owner, n);
  for (std::uint64_t i = 0; i < ticks; ++i) clock.tick_send();
  return clock;
}

/// Byte-exact fidelity: the decoded message's stateless encoding matches the
/// original's (the acceptance bar for every frame in every test below).
void expect_exact(const Message& decoded, const Message& original) {
  EXPECT_EQ(encode_message_frame(decoded), encode_message_frame(original));
}

TEST(DeltaCodecTest, FirstFrameIsFullAndRoundTripsByteExact) {
  DeltaWireEncoder enc(4, /*epoch=*/1, DeltaMode::kFifo);
  DeltaWireDecoder dec(4);
  const Message msg = make_msg(0, 1, ticked_clock(0, 4, 3));
  DeltaAck ack;
  const Message out = dec.decode_from(0, enc.encode_for(1, msg), &ack);
  expect_exact(out, msg);
  EXPECT_EQ(enc.stats().full_frames, 1u);
  EXPECT_EQ(ack.seq, 1u);
  EXPECT_EQ(ack.epoch, 1u);
}

TEST(DeltaCodecTest, FifoDeltaIsMuchSmallerThanFlatAtLargeN) {
  constexpr std::size_t kN = 256;
  DeltaWireEncoder enc(kN, 1, DeltaMode::kFifo);
  DeltaWireDecoder dec(kN);
  Ftvc clock(7, kN);
  clock.tick_send();
  Message m1 = make_msg(7, 1, clock, 1);
  expect_exact(dec.decode_from(7, enc.encode_for(1, m1)), m1);

  clock.tick_send();  // one entry changed since the last frame
  Message m2 = make_msg(7, 1, clock, 2);
  const Bytes wire = enc.encode_for(1, m2);
  expect_exact(dec.decode_from(7, wire), m2);
  const Bytes flat = encode_message_frame(m2);
  // Flat carries 256 (ver, ts) entries; the delta carries one.
  EXPECT_LT(wire.size() * 10, flat.size());
  EXPECT_EQ(enc.stats().full_frames, 1u);
}

TEST(DeltaCodecTest, EmptyClockEncodesStatelessWithNoAck) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kAcked);
  DeltaWireDecoder dec(2);
  const Message msg = make_msg(0, 1, Ftvc{});
  DeltaAck ack{77, 77};
  const Message out = dec.decode_from(0, enc.encode_for(1, msg), &ack);
  expect_exact(out, msg);
  EXPECT_EQ(ack.seq, 0u);  // stateless: nothing to acknowledge
  EXPECT_EQ(enc.stats().frames, 0u);
}

TEST(DeltaCodecTest, AckedModeGoesFullUntilAReceiptArrives) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kAcked);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 8);
  DeltaAck ack;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    clock.tick_send();
    Message m = make_msg(0, 1, clock, i);
    expect_exact(dec.decode_from(0, enc.encode_for(1, m), &ack), m);
  }
  EXPECT_EQ(enc.stats().full_frames, 3u);  // nothing acked yet

  enc.on_ack(1, ack.seq);  // ack the newest frame
  clock.tick_send();
  Message m4 = make_msg(0, 1, clock, 4);
  expect_exact(dec.decode_from(0, enc.encode_for(1, m4), &ack), m4);
  EXPECT_EQ(enc.stats().full_frames, 3u);  // frame 4 was a delta
}

TEST(DeltaCodecTest, AckedDeltaSurvivesDropsOfInFlightFrames) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kAcked);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 8);
  clock.tick_send();
  Message m1 = make_msg(0, 1, clock, 1);
  DeltaAck ack;
  expect_exact(dec.decode_from(0, enc.encode_for(1, m1), &ack), m1);
  enc.on_ack(1, ack.seq);

  // Frames 2..4 are encoded (deltas against frame 1) but never delivered.
  Bytes last;
  Message last_msg;
  for (std::uint64_t i = 2; i <= 4; ++i) {
    clock.tick_send();
    last_msg = make_msg(0, 1, clock, i);
    last = enc.encode_for(1, last_msg);
  }
  // Only the final frame arrives; its base (frame 1) is still cached.
  expect_exact(dec.decode_from(0, last, &ack), last_msg);
  EXPECT_EQ(ack.seq, 4u);
}

TEST(DeltaCodecTest, AckedDeltasDecodeOutOfOrderAndDuplicated) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kAcked);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 8);
  clock.tick_send();
  Message m1 = make_msg(0, 1, clock, 1);
  DeltaAck ack;
  expect_exact(dec.decode_from(0, enc.encode_for(1, m1), &ack), m1);
  enc.on_ack(1, ack.seq);

  clock.tick_send();
  Message m2 = make_msg(0, 1, clock, 2);
  const Bytes w2 = enc.encode_for(1, m2);
  clock.tick_send();
  Message m3 = make_msg(0, 1, clock, 3);
  const Bytes w3 = enc.encode_for(1, m3);

  expect_exact(dec.decode_from(0, w3, &ack), m3);  // reordered
  expect_exact(dec.decode_from(0, w2, &ack), m2);
  expect_exact(dec.decode_from(0, w2, &ack), m2);  // duplicated
  enc.on_ack(1, 3);
  enc.on_ack(1, 2);  // stale receipt after a newer one: ignored
  clock.tick_send();
  Message m4 = make_msg(0, 1, clock, 4);
  expect_exact(dec.decode_from(0, enc.encode_for(1, m4), &ack), m4);
}

TEST(DeltaCodecTest, WindowOverrunFallsBackToFullFrames) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kAcked, /*window=*/2);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 4);
  DeltaAck ack;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    clock.tick_send();
    Message m = make_msg(0, 1, clock, i);
    expect_exact(dec.decode_from(0, enc.encode_for(1, m), &ack), m);
  }
  // No ack ever arrived: the window keeps overrunning, every frame is full,
  // and every one still decodes byte-exact.
  EXPECT_EQ(enc.stats().full_frames, 5u);
}

TEST(DeltaCodecTest, ResetForcesNextFrameFull) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kFifo);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 4);
  clock.tick_send();
  Message m1 = make_msg(0, 1, clock, 1);
  expect_exact(dec.decode_from(0, enc.encode_for(1, m1)), m1);
  enc.reset(1);
  dec.reset(0);
  clock.tick_send();
  Message m2 = make_msg(0, 1, clock, 2);
  expect_exact(dec.decode_from(0, enc.encode_for(1, m2)), m2);
  EXPECT_EQ(enc.stats().full_frames, 2u);
  EXPECT_EQ(enc.stats().resets, 1u);
}

// The satellite regression at codec level: a SIGKILL+respawn sender that
// reuses sequence numbers under a NEW epoch hard-resets the receiver stream
// on its first full frame; everything after decodes byte-exact.
TEST(DeltaCodecTest, RebirthWithReusedSeqsDecodesByteExact) {
  DeltaWireEncoder enc(2, /*epoch=*/1, DeltaMode::kFifo);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 8);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    clock.tick_send();
    Message m = make_msg(0, 1, clock, i);
    expect_exact(dec.decode_from(0, enc.encode_for(1, m)), m);
  }

  // Respawn: fresh encoder, NEW epoch, seq counter restarts at 1 — the same
  // stream seqs the decoder has already cached under epoch 1.
  DeltaWireEncoder respawned(2, /*epoch=*/2, DeltaMode::kFifo);
  Ftvc reborn(0, 8);  // restored state: different timestamps entirely
  reborn.tick_send();
  Message r1 = make_msg(0, 1, reborn, 1);
  DeltaAck ack;
  expect_exact(dec.decode_from(0, respawned.encode_for(1, r1), &ack), r1);
  EXPECT_EQ(ack.epoch, 2u);
  reborn.tick_send();
  Message r2 = make_msg(0, 1, reborn, 2);  // delta against the NEW seq-1 base
  expect_exact(dec.decode_from(0, respawned.encode_for(1, r2), &ack), r2);
  EXPECT_EQ(respawned.stats().full_frames, 1u);
}

// The hazard itself: a respawned sender that reuses seqs WITHOUT an epoch
// bump can at worst force a resync — the base checksum catches the aliased
// base before a wrong clock is ever produced.
TEST(DeltaCodecTest, AliasedBaseFailsChecksumInsteadOfCorrupting) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kFifo);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 8);
  clock.tick_send();
  Message m1 = make_msg(0, 1, clock, 1);
  expect_exact(dec.decode_from(0, enc.encode_for(1, m1)), m1);

  // "Respawn" that wrongly keeps epoch 1: its seq 1 carries different
  // entries than the decoder's cached seq 1...
  DeltaWireEncoder impostor(2, /*epoch=*/1, DeltaMode::kFifo);
  Ftvc other(0, 8);
  other.tick_send();
  other.tick_send();
  other.tick_send();
  Message i1 = make_msg(0, 1, other, 1);
  impostor.encode_for(1, i1);  // full frame, LOST on the wire
  other.tick_send();
  Message i2 = make_msg(0, 1, other, 2);
  const Bytes aliased = impostor.encode_for(1, i2);  // delta vs its seq 1
  // ...so the delta names a cached base with the right seq but the wrong
  // contents. The checksum refuses it.
  EXPECT_THROW(dec.decode_from(0, aliased), DeltaResyncRequired);

  // Designed recovery: both sides reset, the re-sent frame goes full.
  impostor.reset(1);
  dec.reset(0);
  expect_exact(dec.decode_from(0, impostor.encode_for(1, i2)), i2);
}

TEST(DeltaCodecTest, DeltaBeforeFullFrameRequestsResync) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kFifo);
  DeltaWireDecoder dec(2);
  Ftvc clock(0, 4);
  clock.tick_send();
  Message m1 = make_msg(0, 1, clock, 1);
  enc.encode_for(1, m1);  // full frame lost
  clock.tick_send();
  Message m2 = make_msg(0, 1, clock, 2);
  EXPECT_THROW(dec.decode_from(0, enc.encode_for(1, m2)),
               DeltaResyncRequired);
}

TEST(DeltaCodecTest, StatsAccountDeltaVsFlatBytes) {
  DeltaWireEncoder enc(2, 1, DeltaMode::kFifo);
  Ftvc clock(0, 64);
  Bytes total;
  std::uint64_t emitted = 0;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    clock.tick_send();
    emitted += enc.encode_for(1, make_msg(0, 1, clock, i)).size();
  }
  EXPECT_EQ(enc.stats().frames, 4u);
  EXPECT_EQ(enc.stats().delta_bytes, emitted);
  EXPECT_GT(enc.stats().flat_bytes, enc.stats().delta_bytes);
}

TEST(DeltaCodecTest, ChecksumDependsOnEpochSeqAndEntries) {
  const std::vector<FtvcEntry> a{{1, 2}, {3, 4}};
  const std::vector<FtvcEntry> b{{1, 2}, {3, 5}};
  EXPECT_NE(delta_base_checksum(1, 1, a), delta_base_checksum(2, 1, a));
  EXPECT_NE(delta_base_checksum(1, 1, a), delta_base_checksum(1, 2, a));
  EXPECT_NE(delta_base_checksum(1, 1, a), delta_base_checksum(1, 1, b));
}

}  // namespace
}  // namespace optrec::scale
