// Smoke tests for the simulated-fleet measurement harness (small n so they
// stay fast under TSan): byte-exact codec fidelity over real protocol
// traffic, oracle/audit-clean crash schedules, and sane byte accounting.
#include "src/scale/fleet_model.h"

#include <gtest/gtest.h>

namespace optrec::scale {
namespace {

TEST(FleetModelTest, FailureFreeRunIsByteExactAndClean) {
  FleetPiggybackConfig config;
  config.n = 8;
  config.seed = 3;
  config.intensity = 4;
  config.depth = 24;
  config.all_seed = true;
  config.audit = true;
  const FleetPiggybackReport report = run_fleet_piggyback(config);
  ASSERT_TRUE(report.quiesced);
  EXPECT_GT(report.app_frames, 0u);
  EXPECT_EQ(report.fidelity_mismatches, 0u);
  EXPECT_EQ(report.resyncs, 0u);
  EXPECT_TRUE(report.clean()) << report.first_violation;
  EXPECT_GT(report.flat_piggyback_bytes, 0u);
  EXPECT_GT(report.delta_piggyback_bytes, 0u);
  // Frame bytes = piggyback bytes + identical clock-free tails on each side.
  EXPECT_GT(report.flat_frame_bytes, report.flat_piggyback_bytes);
  EXPECT_GT(report.delta_frame_bytes, report.delta_piggyback_bytes);
}

TEST(FleetModelTest, CrashScheduleStaysOracleAndAuditClean) {
  FleetPiggybackConfig config;
  config.n = 8;
  config.seed = 17;
  config.intensity = 4;
  config.depth = 24;
  config.all_seed = true;
  config.crashes = 2;
  config.audit = true;
  const FleetPiggybackReport report = run_fleet_piggyback(config);
  ASSERT_TRUE(report.quiesced);
  EXPECT_GE(report.crashes, 2u);
  EXPECT_TRUE(report.oracle_enabled);
  EXPECT_TRUE(report.audit_enabled);
  EXPECT_TRUE(report.clean()) << report.first_violation;
  EXPECT_LE(report.max_rollbacks_per_failure, 1u);
  EXPECT_EQ(report.fidelity_mismatches, 0u);
}

TEST(FleetModelTest, AckLagShiftsBytesButNeverFidelity) {
  FleetPiggybackConfig config;
  config.n = 8;
  config.seed = 5;
  config.all_seed = true;
  config.ack_lag = 0;  // instant acks: tightest deltas
  const FleetPiggybackReport tight = run_fleet_piggyback(config);
  config.ack_lag = 64;  // acks so late most frames go full
  const FleetPiggybackReport loose = run_fleet_piggyback(config);
  ASSERT_TRUE(tight.quiesced);
  ASSERT_TRUE(loose.quiesced);
  EXPECT_EQ(tight.fidelity_mismatches, 0u);
  EXPECT_EQ(loose.fidelity_mismatches, 0u);
  EXPECT_EQ(tight.app_frames, loose.app_frames);  // same seed, same traffic
  EXPECT_LE(tight.delta_piggyback_bytes, loose.delta_piggyback_bytes);
  EXPECT_GE(loose.full_frames, tight.full_frames);
}

}  // namespace
}  // namespace optrec::scale
