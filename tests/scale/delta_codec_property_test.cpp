// Property/fuzz tests for the delta piggyback codec: random FTVC histories
// pushed through random drops, duplicates, reorders, reconnects, and
// respawns. The invariant checked at EVERY delivery is the acceptance bar
// from the wire-codec layer: the decoded message re-encodes byte-identical
// to the flat encode_message_frame() of the original. Resyncs are allowed
// (they are the designed recovery path); silent divergence is not.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "src/clocks/ftvc.h"
#include "src/scale/delta_codec.h"
#include "src/util/rng.h"
#include "src/wire/wire_codec.h"

namespace optrec::scale {
namespace {

struct InFlight {
  std::size_t src = 0;
  std::size_t dst = 0;
  Bytes wire;
  Bytes flat;  // expected stateless encoding of the original message
};

Message make_msg(std::size_t src, std::size_t dst, const Ftvc& clock,
                 std::uint64_t send_seq, Rng& rng) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = static_cast<ProcessId>(src);
  m.dst = static_cast<ProcessId>(dst);
  m.src_version = clock.entry(m.src).ver;
  m.send_seq = send_seq;
  m.clock = clock;
  m.payload.resize(rng.uniform(16));
  for (auto& b : m.payload) b = static_cast<std::uint8_t>(rng.uniform(256));
  m.sender_state = rng.next_u64();
  m.id = rng.next_u64();
  return m;
}

/// Chaotic-channel property: kAcked mode under drops/dups/reorders/resets.
void run_acked_chaos(std::size_t n, std::size_t ops, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Ftvc> clocks;
  std::vector<std::uint64_t> epochs(n, 1);
  std::vector<std::uint64_t> send_seqs(n, 0);
  std::vector<DeltaWireEncoder> encs;
  std::vector<DeltaWireDecoder> decs;
  for (std::size_t i = 0; i < n; ++i) {
    clocks.emplace_back(static_cast<ProcessId>(i), n);
    encs.emplace_back(n, epochs[i], DeltaMode::kAcked, /*window=*/8);
    decs.emplace_back(n, /*window=*/64);
  }
  std::vector<InFlight> net;
  std::uint64_t deliveries = 0;
  std::uint64_t resyncs = 0;

  auto deliver_at = [&](std::size_t index, bool apply_ack) {
    InFlight f = net[index];
    DeltaAck ack;
    Message out;
    try {
      out = decs[f.dst].decode_from(f.src, f.wire, &ack);
    } catch (const DeltaResyncRequired&) {
      // Designed recovery: receiver NAKs, both ends drop stream state, the
      // frame is abandoned (the transport would re-send it full).
      ++resyncs;
      decs[f.dst].reset(f.src);
      encs[f.src].reset(f.dst);
      return;
    }
    ASSERT_EQ(encode_message_frame(out), f.flat)
        << "silent clock divergence at delivery " << deliveries;
    ++deliveries;
    clocks[f.dst].merge_deliver(out.clock);
    if (apply_ack && ack.seq != 0 && ack.epoch == encs[f.src].epoch()) {
      encs[f.src].on_ack(f.dst, ack.seq);
    }
  };

  for (std::size_t op = 0; op < ops; ++op) {
    const std::uint64_t roll = rng.uniform(100);
    if (roll < 45 || net.empty()) {
      // Send: tick the sender and encode for a random peer.
      const std::size_t src = rng.uniform(n);
      std::size_t dst = rng.uniform(n);
      if (dst == src) dst = (dst + 1) % n;
      clocks[src].tick_send();
      const Message msg =
          make_msg(src, dst, clocks[src], ++send_seqs[src], rng);
      InFlight f;
      f.src = src;
      f.dst = dst;
      f.flat = encode_message_frame(msg);
      f.wire = encs[src].encode_for(dst, msg, f.flat.size());
      net.push_back(std::move(f));
    } else if (roll < 75) {
      // Deliver a random in-flight frame (random index == full reorder);
      // sometimes deliver it twice, sometimes swallow the ack.
      const std::size_t index = rng.uniform(net.size());
      const bool dup = rng.uniform(10) == 0;
      deliver_at(index, rng.uniform(4) != 0);
      if (dup) deliver_at(index, false);
      net.erase(net.begin() + static_cast<std::ptrdiff_t>(index));
    } else if (roll < 85) {
      // Drop a random in-flight frame on the floor.
      const std::size_t index = rng.uniform(net.size());
      net.erase(net.begin() + static_cast<std::ptrdiff_t>(index));
    } else if (roll < 95) {
      // Reconnect one directed pair: both ends drop stream state; frames
      // already in flight stay and may arrive stale later.
      const std::size_t src = rng.uniform(n);
      std::size_t dst = rng.uniform(n);
      if (dst == src) dst = (dst + 1) % n;
      encs[src].reset(dst);
      decs[dst].reset(src);
    } else {
      // Crash + respawn of one process: clock version bumps, encoder is
      // reborn under a new epoch WITH ITS SEQ COUNTERS INTACT (the reused
      // send-seq hazard), its own decoder state is wiped, and peers'
      // encoders toward it reset on reconnect. Peers' decoders are
      // deliberately NOT reset: the epoch carried by the next full frame
      // must hard-reset them.
      const std::size_t p = rng.uniform(n);
      clocks[p].on_restart();
      encs[p].rebirth(++epochs[p]);
      decs[p].reset_all();
      for (std::size_t q = 0; q < n; ++q) {
        if (q != p) encs[q].reset(p);
      }
    }
  }
  // Drain what's left so the run always exercises late stale deliveries.
  while (!net.empty()) {
    deliver_at(net.size() - 1, true);
    net.pop_back();
  }
  EXPECT_GT(deliveries, ops / 4) << "chaos schedule delivered too little";
}

TEST(DeltaCodecPropertyTest, AckedModeSurvivesChaosSmallFleet) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    run_acked_chaos(/*n=*/5, /*ops=*/700, seed);
  }
}

TEST(DeltaCodecPropertyTest, AckedModeSurvivesChaosWideClocks) {
  run_acked_chaos(/*n=*/48, /*ops=*/400, /*seed=*/99);
}

/// FIFO-channel property: in-order reliable delivery per directed pair (the
/// TCP contract), with random connection resets that clear the pair's queue.
TEST(DeltaCodecPropertyTest, FifoModeExactOverInOrderStreams) {
  constexpr std::size_t kN = 6;
  Rng rng(2024);
  std::vector<Ftvc> clocks;
  std::vector<std::uint64_t> send_seqs(kN, 0);
  std::vector<DeltaWireEncoder> encs;
  std::vector<DeltaWireDecoder> decs;
  for (std::size_t i = 0; i < kN; ++i) {
    clocks.emplace_back(static_cast<ProcessId>(i), kN);
    encs.emplace_back(kN, 1, DeltaMode::kFifo);
    decs.emplace_back(kN, /*window=*/4);
  }
  // One FIFO queue per directed pair.
  std::vector<std::deque<InFlight>> queues(kN * kN);
  std::uint64_t deliveries = 0;

  for (std::size_t op = 0; op < 1500; ++op) {
    const std::uint64_t roll = rng.uniform(100);
    const std::size_t src = rng.uniform(kN);
    std::size_t dst = rng.uniform(kN);
    if (dst == src) dst = (dst + 1) % kN;
    auto& q = queues[src * kN + dst];
    if (roll < 45) {
      clocks[src].tick_send();
      const Message msg =
          make_msg(src, dst, clocks[src], ++send_seqs[src], rng);
      InFlight f;
      f.src = src;
      f.dst = dst;
      f.flat = encode_message_frame(msg);
      f.wire = encs[src].encode_for(dst, msg, f.flat.size());
      q.push_back(std::move(f));
    } else if (roll < 90) {
      if (q.empty()) continue;
      const InFlight& f = q.front();
      const Message out = decs[f.dst].decode_from(f.src, f.wire);
      ASSERT_EQ(encode_message_frame(out), f.flat);
      clocks[f.dst].merge_deliver(out.clock);
      ++deliveries;
      q.pop_front();
    } else {
      // Connection reset: staged frames die with the socket, both codec
      // ends drop state — exactly the transport's close_peer discipline.
      q.clear();
      encs[src].reset(dst);
      decs[dst].reset(src);
    }
  }
  EXPECT_GT(deliveries, 200u);
}

}  // namespace
}  // namespace optrec::scale
