// Tests for the hierarchical token-dissemination overlay: split/plan
// correctness, O(log n) depth bounds, O(n) message totals, and the fallback
// rule that routes around dead interior nodes.
#include "src/scale/overlay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace optrec::scale {
namespace {

std::vector<std::uint32_t> iota(std::uint32_t n, std::uint32_t start = 0) {
  std::vector<std::uint32_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(OverlayTest, SplitSubtreePartitionsNearEqually) {
  const auto nodes = iota(10, 5);
  const auto chunks = split_subtree(nodes, 3);
  ASSERT_EQ(chunks.size(), 3u);
  std::vector<std::uint32_t> rebuilt;
  for (const auto& c : chunks) {
    ASSERT_FALSE(c.subtree.empty());
    EXPECT_EQ(c.head, c.subtree.front());
    // Near-equal: 10 over 3 -> sizes 4, 3, 3.
    EXPECT_GE(c.subtree.size(), 3u);
    EXPECT_LE(c.subtree.size(), 4u);
    rebuilt.insert(rebuilt.end(), c.subtree.begin(), c.subtree.end());
  }
  EXPECT_EQ(rebuilt, nodes);  // order preserved, nothing lost or duplicated
}

TEST(OverlayTest, SplitSubtreeEdgeCases) {
  EXPECT_TRUE(split_subtree({}, 4).empty());
  const auto one = split_subtree({7}, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].head, 7u);
  // More fanout than nodes: every node its own singleton.
  const auto wide = split_subtree(iota(3), 8);
  EXPECT_EQ(wide.size(), 3u);
}

TEST(OverlayTest, PlanBroadcastCoversEveryRemoteExactlyOnce) {
  for (std::uint32_t origin : {0u, 3u, 7u}) {
    const auto plan = plan_broadcast(origin, 8, 2);
    std::unordered_set<std::uint32_t> covered;
    for (const auto& c : plan) {
      for (std::uint32_t node : c.subtree) {
        EXPECT_NE(node, origin);
        EXPECT_TRUE(covered.insert(node).second) << "duplicate " << node;
      }
    }
    EXPECT_EQ(covered.size(), 7u);
  }
}

TEST(OverlayTest, FlatModeYieldsSingletonAssignments) {
  const auto plan = plan_broadcast(2, 6, /*fanout=*/0);
  EXPECT_EQ(plan.size(), 5u);  // one relay per remote node, no tree
  for (const auto& c : plan) EXPECT_EQ(c.subtree.size(), 1u);
}

TEST(OverlayTest, TreeDepthIsLogarithmic) {
  EXPECT_EQ(tree_depth(0, 4), 0u);
  EXPECT_EQ(tree_depth(1, 4), 0u);  // a lone head: no further hops
  EXPECT_EQ(tree_depth(2, 4), 1u);
  // 4-ary over 255 remotes: head + 4 chunks of ~63 -> depth 1 + depth(64).
  EXPECT_LE(tree_depth(255, 4), 5u);
  EXPECT_LE(tree_depth(1023, 4), 6u);
  // Depth shrinks as fanout grows.
  EXPECT_GE(tree_depth(1023, 2), tree_depth(1023, 8));
}

TEST(OverlayTest, FailureFreeDisseminationReachesAllWithLinearMessages) {
  for (std::uint32_t n : {16u, 64u, 256u}) {
    const auto report = simulate_dissemination(1, n, 4, {}, 3);
    EXPECT_EQ(report.reached, n - 1u);
    EXPECT_EQ(report.unreachable, 0u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.relays, n - 1u);  // each remote gets exactly one relay
    EXPECT_EQ(report.acks, n - 1u);    // and sends exactly one (subtree) ack
    EXPECT_LE(report.depth, tree_depth(n - 1, 4));
    EXPECT_LE(report.total_messages(), 2u * n);
  }
}

TEST(OverlayTest, FlatModeMatchesBroadcastShape) {
  const auto report = simulate_dissemination(0, 32, /*fanout=*/0, {}, 3);
  EXPECT_EQ(report.reached, 31u);
  EXPECT_EQ(report.relays, 31u);
  EXPECT_EQ(report.depth, 1u);  // no relaying: everything is one hop
}

TEST(OverlayTest, DeadInteriorNodeTriggersFallbackSplit) {
  // Make the first top-level head dead: its whole chunk must still be
  // reached via the fallback split, minus the dead head itself.
  const auto plan = plan_broadcast(0, 64, 4);
  ASSERT_FALSE(plan.empty());
  const std::uint32_t dead = plan[0].head;
  ASSERT_GT(plan[0].subtree.size(), 1u) << "test needs an interior head";

  const auto report = simulate_dissemination(0, 64, 4, {dead}, 3);
  EXPECT_EQ(report.reached, 62u);  // 63 remotes minus the dead head
  EXPECT_EQ(report.unreachable, 1u);
  EXPECT_GE(report.splits, 1u);
  EXPECT_EQ(report.retries, 3u);  // fallback_retries spent on the dead head
  // Fallback costs latency but bounded: timeout units + extra hops.
  EXPECT_GT(report.latency_units, tree_depth(63, 4));
}

TEST(OverlayTest, ManyDeadNodesStillReachEveryAliveNode) {
  std::unordered_set<std::uint32_t> down;
  for (std::uint32_t node = 3; node < 96; node += 7) down.insert(node);
  const auto report = simulate_dissemination(0, 96, 4, down, 2);
  EXPECT_EQ(report.reached, 95u - down.size());
  EXPECT_EQ(report.unreachable, down.size());
  // Messages stay linear even with fallbacks: relays + retries + acks.
  EXPECT_LE(report.total_messages(), 3u * 96u);
}

TEST(OverlayTest, DisseminationIsDeterministic) {
  const auto a = simulate_dissemination(5, 128, 4, {9, 40}, 3);
  const auto b = simulate_dissemination(5, 128, 4, {9, 40}, 3);
  EXPECT_EQ(a.relays, b.relays);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.acks, b.acks);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.latency_units, b.latency_units);
}

}  // namespace
}  // namespace optrec::scale
