// Tests for the tunable Remark-2 GC: level parsing, token-log compaction
// safety, the aggressiveness ordering across levels, and — the part that
// matters — a crashing fleet under aggressive GC still recovers cleanly.
#include "src/scale/gc_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/harness/scenario.h"
#include "src/scale/fleet_model.h"
#include "src/storage/stable_storage.h"

namespace optrec::scale {
namespace {

TEST(GcPolicyTest, LevelNamesRoundTrip) {
  for (GcLevel level : {GcLevel::kOff, GcLevel::kConservative,
                        GcLevel::kStandard, GcLevel::kAggressive}) {
    EXPECT_EQ(parse_gc_level(gc_level_name(level)), level);
  }
  EXPECT_THROW(parse_gc_level("bogus"), std::invalid_argument);
}

TEST(GcPolicyTest, TokenLogCompactionKeepsLastPerVersion) {
  StableStorage storage;
  // Three tokens for (p1, v1) — only the last matters on replay — plus one
  // each for (p1, v2) and (p2, v1).
  storage.log_token(Token{1, {1, 10}});
  storage.log_token(Token{1, {1, 20}});
  storage.log_token(Token{2, {1, 5}});
  storage.log_token(Token{1, {1, 30}});
  storage.log_token(Token{1, {2, 40}});
  const std::size_t removed = storage.compact_token_log();
  EXPECT_EQ(removed, 2u);  // the two earlier (p1, v1) tokens
  const auto& log = storage.token_log();
  ASSERT_EQ(log.size(), 3u);
  // Order of survivors preserved; the (p1, v1) survivor is the LAST one.
  EXPECT_EQ(log[0].from, 2u);
  EXPECT_EQ(log[1].from, 1u);
  EXPECT_EQ(log[1].failed.ver, 1u);
  EXPECT_EQ(log[1].failed.ts, 30u);
  EXPECT_EQ(log[2].failed.ver, 2u);
  // Idempotent.
  EXPECT_EQ(storage.compact_token_log(), 0u);
}

TEST(GcPolicyTest, OffHoldsEverythingAndLevelsOrderByAggressiveness) {
  FleetGcConfig config;
  config.n = 6;
  config.seed = 11;
  config.crashes = 2;

  config.level = GcLevel::kOff;
  const FleetGcReport off = run_fleet_gc(config);
  config.level = GcLevel::kConservative;
  const FleetGcReport conservative = run_fleet_gc(config);
  config.level = GcLevel::kStandard;
  const FleetGcReport standard = run_fleet_gc(config);
  config.level = GcLevel::kAggressive;
  const FleetGcReport aggressive = run_fleet_gc(config);

  ASSERT_TRUE(off.quiesced);
  ASSERT_TRUE(conservative.quiesced);
  ASSERT_TRUE(standard.quiesced);
  ASSERT_TRUE(aggressive.quiesced);

  EXPECT_EQ(off.checkpoints_reclaimed, 0u);
  EXPECT_EQ(off.log_entries_reclaimed, 0u);
  EXPECT_EQ(off.reclaimed_bytes, 0u);
  EXPECT_GT(off.held_intervals, 0u);  // telemetry still flows when off

  // Same workload, same seed: reclaim ordering must follow the knob.
  EXPECT_LE(conservative.checkpoints_reclaimed, standard.checkpoints_reclaimed);
  EXPECT_GT(standard.reclaimed_bytes, 0u);
  EXPECT_GE(aggressive.reclaimed_bytes, standard.reclaimed_bytes);
  // The crash schedule logged tokens; aggressive is the only level that
  // compacts them.
  EXPECT_EQ(standard.tokens_compacted, 0u);
}

TEST(GcPolicyTest, AggressiveGcKeepsRecoveryOracleClean) {
  ScenarioConfig config;
  config.n = 6;
  config.seed = 29;
  config.workload.intensity = 6;
  config.workload.depth = 40;
  config.workload.all_seed = true;
  config.process.enable_stability_tracking = true;
  config.process.enable_gc = true;
  config.process.gc.level = GcLevel::kAggressive;
  config.process.gc.keep_checkpoints = 0;
  config.enable_oracle = true;
  Rng rng(7);
  config.failures = FailurePlan::random(rng, config.n, 3, millis(30),
                                        millis(400));
  Scenario scenario(std::move(config));
  ASSERT_TRUE(scenario.run());
  EXPECT_TRUE(scenario.oracle()->check_consistency().empty());
  EXPECT_LE(scenario.metrics().max_rollbacks_per_process_per_failure(), 1u);
  EXPECT_GT(scenario.metrics().gc_reclaimed_bytes, 0u);
}

}  // namespace
}  // namespace optrec::scale
