// BoundedMpmcRing / MpscRing: single-threaded contracts plus the
// concurrency hammer the tsan CI job runs. The stress tests are the
// data-plane proof obligations: N producers + 1 consumer + concurrent
// size() readers, loss-free across ring overflow into the spill path.
#include "src/util/mpsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace optrec {
namespace {

TEST(BoundedMpmcRingTest, PushPopRoundTripInOrder) {
  BoundedMpmcRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring must report full";
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i) << "single-threaded use is FIFO";
  }
  int v = -1;
  EXPECT_FALSE(ring.try_pop(v)) << "ring must report empty";
}

TEST(BoundedMpmcRingTest, CapacityRoundsUpToPowerOfTwo) {
  BoundedMpmcRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(BoundedMpmcRingTest, WrapsAroundManyTimes) {
  BoundedMpmcRing<int> ring(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(ring.try_push(round));
    int v = -1;
    ASSERT_TRUE(ring.try_pop(v));
    ASSERT_EQ(v, round);
  }
}

TEST(MpscRingTest, PushNeverFailsPastCapacity) {
  MpscRing<int> q(4);
  // 100 pushes into a 4-slot ring: 96 must take the overflow spill.
  for (int i = 0; i < 100; ++i) q.push(i);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_GT(q.overflow_pushes(), 0u);
  EXPECT_EQ(q.high_water(), 100u);

  std::vector<bool> seen(100, false);
  int v = -1;
  while (q.try_pop(v)) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]) << "duplicate " << v;
    seen[static_cast<std::size_t>(v)] = true;
  }
  EXPECT_EQ(q.size(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

TEST(MpscRingTest, SpilledPayloadsKeepTheirContents) {
  // Regression: try_push must not consume its argument on failure, or the
  // overflow spill stores a moved-from (empty) value. Ints cannot catch
  // this — a moved-from int keeps its value — so use real buffers.
  MpscRing<std::vector<std::uint8_t>> q(4);
  for (std::uint8_t i = 0; i < 50; ++i) {
    q.push(std::vector<std::uint8_t>{i, 0xaa, 0xbb});
  }
  ASSERT_GT(q.overflow_pushes(), 0u) << "spill path not exercised";
  std::vector<bool> seen(50, false);
  std::vector<std::uint8_t> v;
  while (q.try_pop(v)) {
    ASSERT_EQ(v.size(), 3u) << "spilled payload lost its contents";
    ASSERT_EQ(v[1], 0xaa);
    ASSERT_FALSE(seen[v[0]]);
    seen[v[0]] = true;
  }
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

// The TSan proof obligation for the whole data plane: concurrent
// producers, a popping consumer and size/high-water readers, with the
// ring deliberately undersized so the overflow path is exercised under
// contention too. Every element must come out exactly once.
TEST(MpscRingStressTest, ProducersConsumerAndSizeReadersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscRing<std::uint64_t> q(64);  // small on purpose: force spills

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push((static_cast<std::uint64_t>(p) << 32) |
               static_cast<std::uint32_t>(i));
      }
    });
  }
  // Concurrent metric readers: must never crash, tear, or block.
  std::thread reader([&q, &done] {
    std::uint64_t sink = 0;
    while (!done.load(std::memory_order_acquire)) {
      sink += q.size() + q.high_water() + q.overflow_pushes();
    }
    ASSERT_GE(sink, 0u);
  });

  std::vector<int> next(kProducers, 0);  // per-producer delivery counters
  std::size_t popped = 0;
  std::uint64_t v = 0;
  while (popped < static_cast<std::size_t>(kProducers) * kPerProducer) {
    if (!q.try_pop(v)) continue;
    const int p = static_cast<int>(v >> 32);
    const int i = static_cast<int>(v & 0xffffffffu);
    ASSERT_LT(p, kProducers);
    ASSERT_LT(i, kPerProducer);
    ++next[static_cast<std::size_t>(p)];
    ++popped;
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[static_cast<std::size_t>(p)], kPerProducer);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.try_pop(v));
}

}  // namespace
}  // namespace optrec
