// TimingWheel property tests: the channel's delay correctness rests on
// two claims — advance() NEVER releases an entry before its not_before
// (exact, not tick-granular), and a sleeper that wakes at next_deadline()
// and re-advances never oversleeps an entry (conservative deadline).
#include "src/util/timing_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace optrec {
namespace {

TEST(TimingWheelTest, ReleasesExactlyAtNotBefore) {
  TimingWheel<int> wheel(/*tick_us=*/64);
  wheel.add(1000, 1);
  std::vector<int> out;
  EXPECT_EQ(wheel.advance(999, out), 0u) << "released 1us early";
  EXPECT_EQ(wheel.advance(1000, out), 1u);
  EXPECT_EQ(out, std::vector<int>{1});
}

TEST(TimingWheelTest, NextDeadlineNeverLaterThanEarliestEntry) {
  Rng rng(42);
  TimingWheel<std::uint64_t> wheel(64);
  std::vector<SimTime> deadlines;
  for (int i = 0; i < 500; ++i) {
    // Mix of near, mid, far and beyond-span delays.
    const SimTime t = rng.uniform(1ull << (6 * 4 + 8)) + 1;
    wheel.add(t, t);
    deadlines.push_back(t);
  }
  const SimTime earliest = *std::min_element(deadlines.begin(),
                                             deadlines.end());
  EXPECT_LE(wheel.next_deadline(), earliest);
}

// Randomized schedule: arbitrary delays, advance in arbitrary time steps.
// Invariants: nothing early, everything out by the time now passes it,
// provided the consumer re-advances at each next_deadline() (the channel's
// sleep loop does exactly that).
TEST(TimingWheelPropertyTest, RandomScheduleNeverEarlyNeverLost) {
  Rng rng(7);
  TimingWheel<std::uint64_t> wheel(64);
  constexpr int kEntries = 2000;
  std::vector<SimTime> not_before(kEntries);
  std::vector<bool> released(kEntries, false);

  SimTime now = 0;
  int added = 0;
  std::vector<std::uint64_t> out;
  while (true) {
    // Interleave additions with time advancement.
    while (added < kEntries && rng.chance(0.7)) {
      const SimTime delay = rng.uniform(500000);  // up to 0.5s of delay
      not_before[static_cast<std::size_t>(added)] = now + delay;
      wheel.add(now + delay, static_cast<std::uint64_t>(added));
      ++added;
    }
    // Advance to min(next_deadline, a random hop) like the sleep loop.
    const SimTime hop = now + 1 + rng.uniform(3000);
    now = std::min(hop, std::max(now + 1, wheel.next_deadline()));
    out.clear();
    wheel.advance(now, out);
    for (std::uint64_t id : out) {
      ASSERT_LT(id, static_cast<std::uint64_t>(kEntries));
      ASSERT_FALSE(released[static_cast<std::size_t>(id)])
          << "entry " << id << " released twice";
      ASSERT_LE(not_before[static_cast<std::size_t>(id)], now)
          << "entry " << id << " released early";
      released[static_cast<std::size_t>(id)] = true;
    }
    if (added == kEntries && wheel.size() == 0) break;
    ASSERT_LT(now, SimTime(1) << 40) << "schedule failed to drain";
  }
  for (int i = 0; i < kEntries; ++i) {
    EXPECT_TRUE(released[static_cast<std::size_t>(i)]) << "entry " << i;
  }
}

TEST(TimingWheelTest, FarFutureEntriesClampAndRecascade) {
  TimingWheel<int> wheel(64);
  // Way beyond the 4-level span (~64^4 ticks): must still come out, and
  // never before its deadline.
  const SimTime span_us = (1ull << 24) * 64;
  const SimTime target = span_us * 3 + 12345;
  wheel.add(target, 42);
  std::vector<int> out;
  SimTime now = 0;
  while (out.empty()) {
    now = std::max(now + 1, wheel.next_deadline());
    ASSERT_LE(now, target * 2) << "lost beyond-span entry";
    wheel.advance(now, out);
    if (!out.empty()) EXPECT_GE(now, target);
  }
  EXPECT_EQ(out, std::vector<int>{42});
}

}  // namespace
}  // namespace optrec
