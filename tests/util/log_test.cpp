// Tests for the leveled logger: sink capture, level filtering, lazy
// evaluation of the stream expression.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/util/log.h"

namespace optrec {
namespace {

/// Redirects the global sink/level for one test and restores the defaults
/// afterwards so later tests (and other suites) see stderr logging again.
class LogCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_sink([this](LogLevel level, const std::string& text) {
      captured_.emplace_back(level, text);
    });
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogCaptureTest, SinkReceivesMessageAndLevel) {
  set_log_level(LogLevel::kInfo);
  OPTREC_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LogCaptureTest, LevelFiltersBelowThreshold) {
  set_log_level(LogLevel::kWarn);
  OPTREC_LOG(kDebug) << "dropped";
  OPTREC_LOG(kInfo) << "dropped too";
  OPTREC_LOG(kWarn) << "kept";
  OPTREC_LOG(kError) << "kept too";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "kept");
  EXPECT_EQ(captured_[1].second, "kept too");
}

TEST_F(LogCaptureTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  OPTREC_LOG(kError) << "nothing";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogCaptureTest, DisabledStreamExpressionNotEvaluated) {
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return "x";
  };
  OPTREC_LOG(kDebug) << probe();
  EXPECT_EQ(evaluations, 0);
  OPTREC_LOG(kWarn) << probe();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogLevelNameTest, Names) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
}

}  // namespace
}  // namespace optrec
