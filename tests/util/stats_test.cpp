#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace optrec {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.percentile(0.5), 0.0);
}

TEST(PercentilesTest, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_NEAR(p.median(), 50.0, 1.0);
  EXPECT_EQ(p.percentile(0.0), 1.0);
  EXPECT_EQ(p.percentile(1.0), 100.0);
  EXPECT_NEAR(p.percentile(0.9), 90.0, 1.0);
}

TEST(PercentilesTest, AddAfterQueryStillWorks) {
  Percentiles p;
  p.add(1.0);
  EXPECT_EQ(p.median(), 1.0);
  p.add(100.0);
  p.add(50.0);
  EXPECT_EQ(p.median(), 50.0);
}

TEST(RunningStatsTest, MergeFromMatchesSequentialAdds) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = 3.7 * i - 20.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeFromEmptySides) {
  RunningStats a, b;
  a.add(5.0);
  RunningStats empty;
  a.merge_from(empty);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge_from(a);  // copy into empty
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 5.0);
}

TEST(PercentilesTest, MergeFromCombinesSamples) {
  Percentiles a, b;
  for (int i = 1; i <= 50; ++i) a.add(static_cast<double>(i));
  for (int i = 51; i <= 100; ++i) b.add(static_cast<double>(i));
  a.merge_from(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_NEAR(a.median(), 50.0, 1.0);
  EXPECT_EQ(a.percentile(1.0), 100.0);
}

}  // namespace
}  // namespace optrec
