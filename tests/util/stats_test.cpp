#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace optrec {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.percentile(0.5), 0.0);
}

TEST(PercentilesTest, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_NEAR(p.median(), 50.0, 1.0);
  EXPECT_EQ(p.percentile(0.0), 1.0);
  EXPECT_EQ(p.percentile(1.0), 100.0);
  EXPECT_NEAR(p.percentile(0.9), 90.0, 1.0);
}

TEST(PercentilesTest, AddAfterQueryStillWorks) {
  Percentiles p;
  p.add(1.0);
  EXPECT_EQ(p.median(), 1.0);
  p.add(100.0);
  p.add(50.0);
  EXPECT_EQ(p.median(), 50.0);
}

}  // namespace
}  // namespace optrec
