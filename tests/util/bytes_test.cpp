#include "src/util/bytes.h"

#include <gtest/gtest.h>

namespace optrec {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, BadHexThrows) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(BytesTest, Fnv1aIsStable) {
  const Bytes data{'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(fnv1a(data), fnv1a(data));
  EXPECT_NE(fnv1a(data), fnv1a(Bytes{'h', 'e', 'l', 'l', 'O'}));
}

TEST(BytesTest, Fnv1aEmptyIsOffsetBasis) {
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ull);
}

}  // namespace
}  // namespace optrec
