#include "src/util/serialization.h"

#include <gtest/gtest.h>

#include <limits>

namespace optrec {
namespace {

TEST(SerializationTest, PrimitiveRoundTrip) {
  Writer w;
  w.put_u8(0x7f);
  w.put_bool(true);
  w.put_u32(0);
  w.put_u32(300);
  w.put_u32(std::numeric_limits<std::uint32_t>::max());
  w.put_u64(std::numeric_limits<std::uint64_t>::max());
  w.put_i64(-1);
  w.put_i64(123456789);
  w.put_string("hello");
  w.put_bytes({1, 2, 3});

  Reader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 0x7f);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_u32(), 0u);
  EXPECT_EQ(r.get_u32(), 300u);
  EXPECT_EQ(r.get_u32(), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(r.get_u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.get_i64(), -1);
  EXPECT_EQ(r.get_i64(), 123456789);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
}

TEST(SerializationTest, VarintSizesMatchInformationContent) {
  // Small values — small encodings; the paper's log2(f)-bits-per-version
  // claim shows up through this property in the piggyback bench.
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(std::numeric_limits<std::uint64_t>::max()), 10u);

  Writer w;
  w.put_u64(127);
  EXPECT_EQ(w.size(), 1u);
  w.put_u64(128);
  EXPECT_EQ(w.size(), 3u);
}

TEST(SerializationTest, ZigZagKeepsSmallNegativesSmall) {
  Writer w;
  w.put_i64(-2);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SerializationTest, ReadPastEndThrows) {
  Writer w;
  w.put_u8(1);
  Reader r(w.buffer());
  r.get_u8();
  EXPECT_THROW(r.get_u8(), DecodeError);
}

TEST(SerializationTest, TruncatedVarintThrows) {
  const Bytes bad{0x80};  // continuation bit set, nothing follows
  Reader r(bad);
  EXPECT_THROW(r.get_u64(), DecodeError);
}

TEST(SerializationTest, OversizedLengthThrows) {
  Writer w;
  w.put_u64(1000);  // claims 1000 bytes follow
  Reader r(w.buffer());
  EXPECT_THROW(r.get_bytes(), DecodeError);
}

TEST(SerializationTest, U32OverflowThrows) {
  Writer w;
  w.put_u64(0x1'0000'0000ull);
  Reader r(w.buffer());
  EXPECT_THROW(r.get_u32(), DecodeError);
}

TEST(SerializationTest, EmptyContainers) {
  Writer w;
  w.put_string("");
  w.put_bytes({});
  Reader r(w.buffer());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.get_bytes().empty());
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace optrec
