#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace optrec {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(rng.uniform_range(4, 4), 4u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(23);
  double sum = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / samples, 5.0, 0.3);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream should not replay the parent's stream.
  Rng parent2(31);
  parent2.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace optrec
