// Tests for the minimal JSON writer/parser backing the trace sinks and
// --metrics-json.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "src/util/json.h"

namespace optrec {
namespace {

std::string write(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter w(os);
  body(w);
  return os.str();
}

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  const std::string out = write([](JsonWriter& w) {
    w.begin_object();
    w.kv("a", std::uint64_t{1});
    w.key("b").begin_array().value(2).value(3).end_array();
    w.key("c").begin_object().kv("d", true).end_object();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"a":1,"b":[2,3],"c":{"d":true}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  const std::string out = write([](JsonWriter& w) {
    w.begin_object();
    w.kv("s", "a\"b\\c\nd\te");
    w.end_object();
  });
  EXPECT_EQ(out, "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  const std::string out = write([](JsonWriter& w) {
    w.value(std::string_view("\x01", 1));
  });
  EXPECT_EQ(out, "\"\\u0001\"");
}

TEST(JsonWriterTest, LargeU64Exact) {
  const std::uint64_t big = 0xffffffffffffffffull;
  const std::string out = write([&](JsonWriter& w) { w.value(big); });
  EXPECT_EQ(out, "18446744073709551615");
}

TEST(JsonValueTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e2").as_double(), -250.0);
  EXPECT_EQ(JsonValue::parse("\"x\\ny\"").as_string(), "x\ny");
}

TEST(JsonValueTest, U64RoundTripsExactly) {
  // Doubles lose precision past 2^53; ids must not.
  const JsonValue v = JsonValue::parse("18446744073709551615");
  EXPECT_EQ(v.as_u64(), 18446744073709551615ull);
}

TEST(JsonValueTest, ObjectLookup) {
  const JsonValue v = JsonValue::parse(R"({"a":7,"b":{"c":[1,2]}})");
  EXPECT_EQ(v.u64_or("a", 0), 7u);
  EXPECT_EQ(v.u64_or("missing", 42), 42u);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  const JsonValue* c = b->find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->as_array().size(), 2u);
  EXPECT_EQ(c->as_array()[1].as_u64(), 2u);
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(JsonValueTest, UnicodeEscapeDecodes) {
  EXPECT_EQ(JsonValue::parse("\"A\\u0001\"").as_string(),
            std::string("A\x01"));
}

TEST(JsonValueTest, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);  // trailing
  EXPECT_THROW(JsonValue::parse("truthy"), std::runtime_error);
}

TEST(JsonValueTest, KindMismatchThrows) {
  const JsonValue v = JsonValue::parse("3");
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
}

TEST(JsonRoundTripTest, WriterOutputParses) {
  const std::string out = write([](JsonWriter& w) {
    w.begin_object();
    w.kv("n", std::uint64_t{12345678901234567ull});
    w.kv("f", 1.5);
    w.kv("neg", std::int64_t{-9});
    w.key("list").begin_array().value("a").value(false).null().end_array();
    w.end_object();
  });
  const JsonValue v = JsonValue::parse(out);
  EXPECT_EQ(v.u64_or("n", 0), 12345678901234567ull);
  EXPECT_DOUBLE_EQ(v.find("f")->as_double(), 1.5);
  EXPECT_DOUBLE_EQ(v.find("neg")->as_double(), -9.0);
  const auto& list = v.find("list")->as_array();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].as_string(), "a");
  EXPECT_EQ(list[1].as_bool(), false);
  EXPECT_TRUE(list[2].is_null());
}

}  // namespace
}  // namespace optrec
