// Hostile-input fuzz tests for the wire codec.
//
// decode_frame is the first thing that touches bytes read off a real
// socket, so it must convert every malformed input — truncated, oversized,
// bit-flipped, garbage — into a typed FrameError, never UB, an assert, or
// an attacker-controlled allocation. These tests sweep randomized
// corruptions of valid frames plus pure-noise buffers and assert the only
// observable outcomes are "decoded something" or "threw FrameError".
#include <gtest/gtest.h>

#include <cstdint>

#include "src/util/rng.h"
#include "src/util/serialization.h"
#include "src/wire/wire_codec.h"

namespace optrec {
namespace {

Ftvc fuzz_clock(Rng& rng, std::size_t n) {
  std::vector<FtvcEntry> entries(n);
  for (auto& e : entries) {
    e.ver = static_cast<Version>(rng.uniform(4));
    e.ts = rng.uniform(1000);
  }
  return Ftvc::with_entries(static_cast<ProcessId>(rng.uniform(n)),
                            std::move(entries));
}

Bytes fuzz_message_frame(Rng& rng) {
  const std::size_t n = 2 + rng.uniform(6);
  Message m;
  m.id = rng.next_u64();
  m.src = static_cast<ProcessId>(rng.uniform(n));
  m.dst = static_cast<ProcessId>((m.src + 1) % n);
  m.src_version = static_cast<Version>(rng.uniform(5));
  m.send_seq = rng.uniform(100000);
  if (rng.chance(0.8)) m.clock = fuzz_clock(rng, n);
  m.payload.resize(rng.uniform(48));
  for (auto& b : m.payload) b = static_cast<std::uint8_t>(rng.uniform(256));
  m.sender_state = rng.next_u64();
  return encode_message_frame(m);
}

Bytes fuzz_token_frame(Rng& rng) {
  const std::size_t n = 2 + rng.uniform(6);
  Token t;
  t.from = static_cast<ProcessId>(rng.uniform(n));
  t.failed.ver = static_cast<Version>(rng.uniform(6));
  t.failed.ts = rng.uniform(100000);
  if (rng.chance(0.5)) t.restored_clock = fuzz_clock(rng, n);
  return encode_token_frame(t);
}

/// The one acceptable pair of outcomes on arbitrary bytes.
void expect_decodes_or_throws_frame_error(const Bytes& wire) {
  try {
    (void)decode_frame(wire);
  } catch (const FrameError&) {
    // typed, expected
  }
  // Anything else (other exception types, crash, UB) fails the test.
}

TEST(WireFuzzTest, EveryStrictPrefixOfAValidFrameThrowsFrameError) {
  Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    const Bytes wire =
        round % 2 == 0 ? fuzz_message_frame(rng) : fuzz_token_frame(rng);
    ASSERT_NO_THROW((void)decode_frame(wire));
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const Bytes prefix(wire.begin(), wire.begin() + cut);
      EXPECT_THROW((void)decode_frame(prefix), FrameError)
          << "prefix of length " << cut << " of " << wire.size();
    }
  }
}

TEST(WireFuzzTest, EmptyFrameIsTruncated) {
  try {
    (void)decode_frame(Bytes{});
    FAIL() << "empty frame decoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kTruncated);
  }
}

TEST(WireFuzzTest, OversizedFrameIsRejectedBeforeDecoding) {
  // The buffer is garbage beyond the tag; the size gate must fire first.
  Bytes huge(kMaxFrameBytes + 1, 0xab);
  huge[0] = static_cast<std::uint8_t>(FrameType::kMessage);
  try {
    (void)decode_frame(huge);
    FAIL() << "oversized frame decoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kOversized);
  }
}

TEST(WireFuzzTest, UnknownTagIsCorruptAndTrailingBytesAreTrailing) {
  Rng rng(13);
  Bytes wire = fuzz_token_frame(rng);
  Bytes bad_tag = wire;
  bad_tag[0] = 0x7f;
  try {
    (void)decode_frame(bad_tag);
    FAIL() << "unknown tag decoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kCorrupt);
  }

  Bytes trailing = wire;
  trailing.push_back(0x00);
  try {
    (void)decode_frame(trailing);
    FAIL() << "trailing garbage decoded";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::kTrailing);
  }
}

TEST(WireFuzzTest, SingleByteMutationsNeverEscapeFrameError) {
  Rng rng(17);
  for (int round = 0; round < 300; ++round) {
    Bytes wire =
        round % 2 == 0 ? fuzz_message_frame(rng) : fuzz_token_frame(rng);
    const std::size_t pos = rng.uniform(wire.size());
    wire[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    expect_decodes_or_throws_frame_error(wire);
  }
}

TEST(WireFuzzTest, MultiByteMutationsAndSplicesNeverEscapeFrameError) {
  Rng rng(19);
  for (int round = 0; round < 300; ++round) {
    Bytes wire =
        round % 2 == 0 ? fuzz_message_frame(rng) : fuzz_token_frame(rng);
    const std::size_t flips = 1 + rng.uniform(8);
    for (std::size_t i = 0; i < flips; ++i) {
      wire[rng.uniform(wire.size())] =
          static_cast<std::uint8_t>(rng.uniform(256));
    }
    if (rng.chance(0.3)) {
      // Splice a chunk of a different frame onto the end.
      const Bytes other = fuzz_token_frame(rng);
      const std::size_t take = rng.uniform(other.size());
      wire.insert(wire.end(), other.begin(), other.begin() + take);
    }
    expect_decodes_or_throws_frame_error(wire);
  }
}

TEST(WireFuzzTest, PureNoiseBuffersNeverEscapeFrameError) {
  Rng rng(23);
  for (int round = 0; round < 500; ++round) {
    Bytes noise(rng.uniform(256), 0);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform(256));
    expect_decodes_or_throws_frame_error(noise);
  }
}

TEST(WireFuzzTest, HostileClockCountCannotForceHugeAllocation) {
  // Hand-build a message frame whose FTVC entry count claims 2^32-1 with
  // only a handful of bytes behind it. Before the Ftvc::decode bound this
  // attempted a multi-gigabyte resize.
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(FrameType::kMessage));
  w.put_u8(0);        // kind = app
  w.put_u32(0);       // src
  w.put_u32(1);       // dst
  w.put_u32(0);       // src_version
  w.put_u64(0);       // send_seq
  w.put_bool(false);  // retransmission
  w.put_bool(true);   // has clock
  w.put_u32(0);       // clock owner
  w.put_u32(0xffffffffu);  // hostile entry count
  const Bytes wire = w.take();
  EXPECT_THROW((void)decode_frame(wire), FrameError);
}

}  // namespace
}  // namespace optrec
