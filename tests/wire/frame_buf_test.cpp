// FramePool / FrameRef: refcount correctness under concurrent fan-out —
// the property the zero-copy broadcast path depends on — plus freelist
// reuse accounting.
#include "src/wire/frame_buf.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace optrec {
namespace {

TEST(FrameBufTest, WrapAdoptsBytesWithoutCopy) {
  FramePool pool;
  Bytes b = {1, 2, 3, 4};
  const std::uint8_t* data = b.data();
  FrameRef ref = pool.wrap(std::move(b));
  EXPECT_EQ(ref.size(), 4u);
  EXPECT_EQ(ref.data(), data) << "wrap must not copy the buffer";
  EXPECT_EQ(ref.use_count(), 1u);
}

TEST(FrameBufTest, CopySharesMoveSteals) {
  FramePool pool;
  FrameRef a = pool.wrap({9, 9});
  FrameRef b = a;  // copy: one more ref, same buffer
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.data(), b.data());
  FrameRef c = std::move(a);  // move: no refcount change
  EXPECT_FALSE(a);            // NOLINT(bugprone-use-after-move): asserted empty
  EXPECT_EQ(c.use_count(), 2u);
}

TEST(FrameBufTest, LastReleaseRecyclesIntoFreelist) {
  FramePool pool;
  { FrameRef ref = pool.wrap({1, 2, 3}); }
  FramePool::Stats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);  // first acquire allocated
  EXPECT_EQ(s.recycled, 1u);
  EXPECT_EQ(s.outstanding, 0u);

  // Next acquire must reuse the recycled node.
  { FrameRef ref = pool.acquire(); }
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(FrameBufTest, OversizedBuffersAreDiscardedNotPooled) {
  FramePool pool;
  {
    Bytes big(FramePool::kMaxPooledCapacity + 1, 0xab);
    FrameRef ref = pool.wrap(std::move(big));
  }
  const FramePool::Stats s = pool.stats();
  EXPECT_EQ(s.discarded, 1u);
  EXPECT_EQ(s.recycled, 0u);
}

// The broadcast-fan-out obligation: many threads concurrently clone and
// drop refs to one shared frame; the bytes must stay valid until the very
// last drop, and exactly one recycle must happen.
TEST(FrameBufStressTest, ConcurrentFanOutKeepsBytesAliveUntilLastRelease) {
  FramePool pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 5000;

  for (int round = 0; round < kRounds / 100; ++round) {
    FrameRef shared = pool.wrap({0xde, 0xad, 0xbe, 0xef});
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&shared] {
        for (int i = 0; i < 100; ++i) {
          FrameRef mine = shared;  // clone
          ASSERT_EQ(mine.size(), 4u);
          ASSERT_EQ(mine.bytes()[0], 0xde);
          FrameRef second = mine;  // clone of clone
          ASSERT_EQ(second.bytes()[3], 0xef);
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(shared.use_count(), 1u) << "a clone leaked a reference";
  }
  const FramePool::Stats s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.recycled + s.discarded, kRounds / 100);  // one per round
}

TEST(FrameBufStressTest, ConcurrentWrapReleaseChurnsFreelistSafely) {
  FramePool pool(/*capacity=*/16);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 20000; ++i) {
        FrameRef ref = pool.wrap(Bytes(static_cast<std::size_t>(t) + 1,
                                       static_cast<std::uint8_t>(t)));
        ASSERT_EQ(ref.bytes()[0], static_cast<std::uint8_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  const FramePool::Stats s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.recycled + s.discarded, 6u * 20000u);
}

}  // namespace
}  // namespace optrec
