// Wire codec property tests: encode→decode identity for messages, FTVCs,
// histories, and tokens (randomized sweeps), frame-type safety, byte
// accounting, the differential FIFO variant, and the paper's O(n) growth
// claim measured on actual serialized piggybacks.
#include "src/wire/wire_codec.h"

#include <gtest/gtest.h>

#include "src/history/history.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace optrec {
namespace {

Ftvc random_clock(Rng& rng, std::size_t n) {
  std::vector<FtvcEntry> entries(n);
  for (auto& e : entries) {
    e.ver = static_cast<Version>(rng.uniform(4));
    if (rng.chance(0.05)) e.ver = 0xffffffffu - static_cast<Version>(rng.uniform(2));
    e.ts = rng.uniform(1000);
    if (rng.chance(0.05)) e.ts = 0xffffffffffffffffull - rng.uniform(2);
  }
  return Ftvc::with_entries(static_cast<ProcessId>(rng.uniform(n)),
                            std::move(entries));
}

Message random_message(Rng& rng, std::size_t n) {
  Message m;
  m.id = rng.next_u64();
  m.kind = rng.chance(0.2) ? MessageKind::kControl : MessageKind::kApp;
  m.src = static_cast<ProcessId>(rng.uniform(n));
  do {
    m.dst = static_cast<ProcessId>(rng.uniform(n));
  } while (m.dst == m.src);
  m.src_version = static_cast<Version>(rng.uniform(5));
  m.send_seq = rng.uniform(100000);
  if (rng.chance(0.8)) m.clock = random_clock(rng, n);
  m.payload.resize(rng.uniform(64));
  for (auto& b : m.payload) b = static_cast<std::uint8_t>(rng.uniform(256));
  m.retransmission = rng.chance(0.1);
  m.sender_state = rng.next_u64();
  return m;
}

Token random_token(Rng& rng, std::size_t n) {
  Token t;
  t.from = static_cast<ProcessId>(rng.uniform(n));
  t.failed.ver = static_cast<Version>(rng.uniform(6));
  t.failed.ts = rng.uniform(100000);
  if (rng.chance(0.5)) t.restored_clock = random_clock(rng, n);
  t.origin_pid = static_cast<ProcessId>(rng.uniform(n));
  t.origin_ver = static_cast<Version>(rng.uniform(6));
  return t;
}

void expect_same(const Message& a, const Message& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_EQ(a.src_version, b.src_version);
  EXPECT_EQ(a.send_seq, b.send_seq);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.clock.owner(), b.clock.owner());
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.retransmission, b.retransmission);
  EXPECT_EQ(a.sender_state, b.sender_state);
}

void expect_same(const Token& a, const Token& b) {
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.restored_clock.has_value(), b.restored_clock.has_value());
  if (a.restored_clock && b.restored_clock) {
    EXPECT_EQ(*a.restored_clock, *b.restored_clock);
    EXPECT_EQ(a.restored_clock->owner(), b.restored_clock->owner());
  }
  EXPECT_EQ(a.origin_pid, b.origin_pid);
  EXPECT_EQ(a.origin_ver, b.origin_ver);
}

TEST(WireCodecTest, MessageFrameRoundTripProperty) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const Message m = random_message(rng, 2 + rng.uniform(15));
    const Frame f = decode_frame(encode_message_frame(m));
    ASSERT_EQ(f.type, FrameType::kMessage) << "iteration " << i;
    expect_same(m, f.message);
  }
}

TEST(WireCodecTest, TokenFrameRoundTripProperty) {
  Rng rng(4048);
  for (int i = 0; i < 500; ++i) {
    const Token t = random_token(rng, 2 + rng.uniform(15));
    const Frame f = decode_frame(encode_token_frame(t));
    ASSERT_EQ(f.type, FrameType::kToken) << "iteration " << i;
    expect_same(t, f.token);
  }
}

TEST(WireCodecTest, FtvcRoundTripProperty) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Ftvc c = random_clock(rng, 1 + rng.uniform(20));
    Writer w;
    c.encode(w);
    Reader r(w.buffer());
    const Ftvc out = Ftvc::decode(r);
    ASSERT_EQ(out, c) << "iteration " << i;
    ASSERT_EQ(out.owner(), c.owner());
    ASSERT_TRUE(r.at_end());
  }
}

TEST(WireCodecTest, HistoryRoundTripProperty) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = 2 + rng.uniform(8);
    History h(static_cast<ProcessId>(rng.uniform(n)), n);
    for (int step = rng.uniform(30); step-- > 0;) {
      if (rng.chance(0.3)) {
        h.observe_token(static_cast<ProcessId>(rng.uniform(n)),
                        {static_cast<Version>(rng.uniform(4)),
                         rng.uniform(50)});
      } else {
        h.observe_message_clock(random_clock(rng, n));
      }
    }
    Writer w;
    h.encode(w);
    Reader r(w.buffer());
    const History out = History::decode(r);
    ASSERT_EQ(out, h) << "iteration " << i;
    ASSERT_TRUE(r.at_end());
  }
}

TEST(WireCodecTest, EmptyHistoryRoundTrips) {
  const History h;  // default: no owner, no processes
  Writer w;
  h.encode(w);
  Reader r(w.buffer());
  EXPECT_EQ(History::decode(r), h);
  EXPECT_TRUE(r.at_end());
}

TEST(WireCodecTest, MalformedFramesThrow) {
  EXPECT_THROW(decode_frame(Bytes{}), DecodeError);
  EXPECT_THROW(decode_frame(Bytes{0x7f}), DecodeError);  // unknown tag
  Bytes good = encode_message_frame(Message{});
  good.push_back(0);  // trailing garbage
  EXPECT_THROW(decode_frame(good), DecodeError);
  Bytes truncated = encode_token_frame(Token{});
  truncated.pop_back();
  EXPECT_THROW(decode_frame(truncated), DecodeError);
}

TEST(WireCodecTest, WireBytesMatchFrameMinusTelemetry) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const Message m = random_message(rng, 8);
    // Telemetry (sender_state + id) must not count as wire bytes.
    const std::size_t frame = encode_message_frame(m).size();
    EXPECT_EQ(message_wire_bytes(m),
              frame - varint_size(m.sender_state) - varint_size(m.id));
    EXPECT_EQ(message_piggyback_bytes(m),
              message_wire_bytes(m) - m.payload.size());
    const Token t = random_token(rng, 8);
    EXPECT_EQ(token_wire_bytes(t),
              encode_token_frame(t).size() - varint_size(t.origin_pid) -
                  varint_size(t.origin_ver));
  }
}

TEST(WireCodecTest, PiggybackGrowsLinearlyWithProcessCount) {
  // The paper's headline overhead claim: FTVC + history piggyback is O(n).
  // Measure actual serialized bytes at n and 8n; linear growth means the
  // ratio is ~8, and super-linear (O(n^2)) would push it toward 64.
  const auto piggyback_at = [](std::size_t n) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.clock = Ftvc(0, n);
    m.payload = Bytes(32, 0xab);
    History h(0, n);
    Writer w;
    h.encode(w);
    return message_piggyback_bytes(m) + w.size();
  };
  const std::size_t at8 = piggyback_at(8);
  const std::size_t at64 = piggyback_at(64);
  EXPECT_GE(at64, 6 * at8 - 16) << "should grow ~linearly";
  EXPECT_LE(at64, 10 * at8 + 16) << "must not grow quadratically";
}

TEST(WireCodecTest, DiffVariantRoundTripsOverFifoStream) {
  // Paired encoder/decoder over a per-(src,dst) FIFO stream: every frame
  // must reconstruct the exact message, and steady-state frames must be
  // smaller than stateless ones.
  const std::size_t n = 6;
  Rng rng(31337);
  DiffWireEncoder enc(n);
  DiffWireDecoder dec(n);
  Ftvc clock(0, n);
  std::size_t diff_total = 0, full_total = 0;
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.id = static_cast<MsgId>(i + 1);
    m.src = 0;
    m.dst = 3;
    m.send_seq = static_cast<std::uint64_t>(i);
    m.clock = clock;
    m.payload = Bytes(16, static_cast<std::uint8_t>(i));
    m.sender_state = rng.next_u64();
    const Bytes wire = enc.encode_message(m);
    diff_total += wire.size();
    full_total += encode_message_frame(m).size();
    const Message out = dec.decode_message(wire);
    expect_same(m, out);
    clock.tick_send();
    if (rng.chance(0.1)) {
      // Simulate a rollback/restart boundary: both sides resynchronize.
      enc.invalidate(3);
      dec.reset(0);
      clock.on_restart();
    }
  }
  EXPECT_LT(diff_total, full_total)
      << "differential clocks must beat full clocks on FIFO streams";
}

TEST(WireCodecTest, DiffDecoderRejectsStatelessFrames) {
  DiffWireDecoder dec(4);
  Message m;
  m.src = 0;
  m.dst = 1;
  EXPECT_THROW(dec.decode_message(encode_message_frame(m)), DecodeError);
}

}  // namespace
}  // namespace optrec
