#include "src/net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace optrec {
namespace {

class StubEndpoint : public Endpoint {
 public:
  void on_message(const Message& msg) override { messages.push_back(msg); }
  void on_token(const Token& token) override { tokens.push_back(token); }
  bool is_up() const override { return up; }

  std::vector<Message> messages;
  std::vector<Token> tokens;
  bool up = true;
};

Message make_msg(ProcessId src, ProcessId dst, std::uint64_t seq = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.send_seq = seq;
  m.payload = {1, 2, 3};
  return m;
}

struct NetworkTest : ::testing::Test {
  NetworkTest() : sim(1234) {}

  Network& make(NetworkConfig config, std::size_t n = 3) {
    net = std::make_unique<Network>(sim, config);
    endpoints.resize(n);
    for (ProcessId pid = 0; pid < n; ++pid) net->attach(pid, &endpoints[pid]);
    return *net;
  }

  Simulation sim;
  std::unique_ptr<Network> net;
  std::vector<StubEndpoint> endpoints;
};

TEST_F(NetworkTest, DeliversWithinDelayBounds) {
  NetworkConfig config;
  config.min_delay = 100;
  config.max_delay = 200;
  auto& n = make(config);
  n.send(make_msg(0, 1));
  sim.run(99);
  EXPECT_TRUE(endpoints[1].messages.empty());
  sim.run(200);
  ASSERT_EQ(endpoints[1].messages.size(), 1u);
  EXPECT_EQ(endpoints[1].messages[0].src, 0u);
}

TEST_F(NetworkTest, AssignsUniqueIds) {
  auto& n = make({});
  const MsgId a = n.send(make_msg(0, 1));
  const MsgId b = n.send(make_msg(0, 2));
  EXPECT_NE(a, b);
}

TEST_F(NetworkTest, RejectsSelfSend) {
  auto& n = make({});
  EXPECT_THROW(n.send(make_msg(1, 1)), std::invalid_argument);
}

TEST_F(NetworkTest, RejectsUnknownDestination) {
  auto& n = make({});
  EXPECT_THROW(n.send(make_msg(0, 9)), std::out_of_range);
}

TEST_F(NetworkTest, NonFifoCanReorder) {
  NetworkConfig config;
  config.min_delay = 1;
  config.max_delay = 1000;
  config.fifo = false;
  auto& n = make(config);
  for (std::uint64_t i = 0; i < 64; ++i) n.send(make_msg(0, 1, i));
  sim.run();
  ASSERT_EQ(endpoints[1].messages.size(), 64u);
  bool reordered = false;
  for (std::size_t i = 1; i < endpoints[1].messages.size(); ++i) {
    if (endpoints[1].messages[i].send_seq <
        endpoints[1].messages[i - 1].send_seq) {
      reordered = true;
    }
  }
  EXPECT_TRUE(reordered) << "64 sends over a wide delay range should reorder";
}

TEST_F(NetworkTest, FifoPreservesPairOrder) {
  NetworkConfig config;
  config.min_delay = 1;
  config.max_delay = 1000;
  config.fifo = true;
  auto& n = make(config);
  for (std::uint64_t i = 0; i < 64; ++i) n.send(make_msg(0, 1, i));
  sim.run();
  ASSERT_EQ(endpoints[1].messages.size(), 64u);
  for (std::size_t i = 0; i < endpoints[1].messages.size(); ++i) {
    EXPECT_EQ(endpoints[1].messages[i].send_seq, i);
  }
}

TEST_F(NetworkTest, DropProbabilityDropsAppMessages) {
  NetworkConfig config;
  config.drop_prob = 1.0;
  auto& n = make(config);
  n.send(make_msg(0, 1));
  sim.run();
  EXPECT_TRUE(endpoints[1].messages.empty());
  EXPECT_EQ(n.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, DropProbabilitySparesControlMessages) {
  NetworkConfig config;
  config.drop_prob = 1.0;
  auto& n = make(config);
  Message m = make_msg(0, 1);
  m.kind = MessageKind::kControl;
  n.send(std::move(m));
  sim.run();
  EXPECT_EQ(endpoints[1].messages.size(), 1u);
}

TEST_F(NetworkTest, RetriesWhileEndpointDown) {
  NetworkConfig config;
  config.min_delay = config.max_delay = 10;
  config.retry_interval = 5;
  auto& n = make(config);
  endpoints[1].up = false;
  n.send(make_msg(0, 1));
  sim.run(100);
  EXPECT_TRUE(endpoints[1].messages.empty());
  EXPECT_GT(n.stats().messages_retried, 0u);
  endpoints[1].up = true;
  sim.run();
  EXPECT_EQ(endpoints[1].messages.size(), 1u);
}

TEST_F(NetworkTest, TokenBroadcastReachesAllOthers) {
  auto& n = make({});
  Token t;
  t.from = 0;
  t.failed = {0, 7};
  n.broadcast_token(t);
  sim.run();
  EXPECT_TRUE(endpoints[0].tokens.empty());
  ASSERT_EQ(endpoints[1].tokens.size(), 1u);
  ASSERT_EQ(endpoints[2].tokens.size(), 1u);
  EXPECT_EQ(endpoints[1].tokens[0].failed.ts, 7u);
}

TEST_F(NetworkTest, TokensSurvivePartition) {
  NetworkConfig config;
  config.min_delay = config.max_delay = 10;
  config.retry_interval = 10;
  auto& n = make(config);
  n.set_partition({{0}, {1, 2}});
  Token t;
  t.from = 0;
  t.failed = {1, 3};
  n.broadcast_token(t);
  sim.run(500);
  EXPECT_TRUE(endpoints[1].tokens.empty());
  n.heal_partition();
  sim.run();
  EXPECT_EQ(endpoints[1].tokens.size(), 1u);
  EXPECT_EQ(endpoints[2].tokens.size(), 1u);
}

TEST_F(NetworkTest, MessagesHeldAcrossPartitionDeliverAfterHeal) {
  NetworkConfig config;
  config.min_delay = config.max_delay = 10;
  config.retry_interval = 10;
  auto& n = make(config);
  n.set_partition({{0}, {1, 2}});
  n.send(make_msg(0, 1));
  n.send(make_msg(1, 2));  // same side: goes through
  sim.run(300);
  EXPECT_TRUE(endpoints[1].messages.empty());
  EXPECT_EQ(endpoints[2].messages.size(), 1u);
  n.heal_partition();
  sim.run();
  EXPECT_EQ(endpoints[1].messages.size(), 1u);
}

TEST_F(NetworkTest, ConnectedReflectsPartition) {
  auto& n = make({});
  EXPECT_TRUE(n.connected(0, 1));
  n.set_partition({{0, 1}, {2}});
  EXPECT_TRUE(n.connected(0, 1));
  EXPECT_FALSE(n.connected(1, 2));
  n.heal_partition();
  EXPECT_TRUE(n.connected(1, 2));
}

TEST_F(NetworkTest, StatsCountBytesAndKinds) {
  auto& n = make({});
  n.send(make_msg(0, 1));
  Message ctl = make_msg(0, 1);
  ctl.kind = MessageKind::kControl;
  n.send(std::move(ctl));
  sim.run();
  EXPECT_EQ(n.stats().messages_sent, 2u);
  EXPECT_EQ(n.stats().app_messages_sent, 1u);
  EXPECT_EQ(n.stats().app_messages_delivered, 1u);
  EXPECT_GT(n.stats().message_bytes, 0u);
  EXPECT_EQ(n.app_messages_in_flight(), 0u);
}

TEST_F(NetworkTest, MessageTapSeesStampedSends) {
  auto& n = make({});
  std::vector<Message> tapped;
  n.set_message_tap([&](const Message& m) { tapped.push_back(m); });
  n.send(make_msg(0, 1, 42));
  ASSERT_EQ(tapped.size(), 1u);
  EXPECT_EQ(tapped[0].send_seq, 42u);
  EXPECT_NE(tapped[0].id, 0u);
}

}  // namespace
}  // namespace optrec
