// Wire-unit tests: Message/Token serialization, wire sizing, description.
#include "src/net/message.h"

#include <gtest/gtest.h>

#include "src/util/serialization.h"

namespace optrec {
namespace {

Message sample_message() {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = 2;
  m.dst = 5;
  m.src_version = 3;
  m.send_seq = 999;
  m.clock = Ftvc(2, 6);
  m.payload = {1, 2, 3, 4};
  m.retransmission = true;
  m.sender_state = 12345;
  return m;
}

TEST(MessageTest, EncodeDecodeRoundTrip) {
  const Message m = sample_message();
  Writer w;
  m.encode(w);
  Reader r(w.buffer());
  const Message back = Message::decode(r);
  EXPECT_EQ(back.kind, m.kind);
  EXPECT_EQ(back.src, m.src);
  EXPECT_EQ(back.dst, m.dst);
  EXPECT_EQ(back.src_version, m.src_version);
  EXPECT_EQ(back.send_seq, m.send_seq);
  EXPECT_EQ(back.clock, m.clock);
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_EQ(back.retransmission, m.retransmission);
  EXPECT_EQ(back.sender_state, m.sender_state);
  EXPECT_TRUE(r.at_end());
}

TEST(MessageTest, ClocklessMessageRoundTrip) {
  Message m;
  m.src = 0;
  m.dst = 1;
  m.payload = {9};
  Writer w;
  m.encode(w);
  Reader r(w.buffer());
  EXPECT_EQ(Message::decode(r).clock.size(), 0u);
}

TEST(MessageTest, WireSizeExcludesOracleTag) {
  Message a = sample_message();
  Message b = sample_message();
  b.sender_state = 0;  // bookkeeping must not change the wire size
  a.sender_state = 1u << 30;
  EXPECT_EQ(a.wire_size(), b.wire_size());
}

TEST(MessageTest, WireSizeGrowsWithClockAndPayload) {
  Message bare;
  bare.src = 0;
  bare.dst = 1;
  Message with_clock = bare;
  with_clock.clock = Ftvc(0, 16);
  Message with_payload = bare;
  with_payload.payload.assign(100, 0x55);
  EXPECT_GT(with_clock.wire_size(), bare.wire_size());
  EXPECT_GT(with_payload.wire_size(), bare.wire_size() + 99);
}

TEST(MessageTest, DescribeMentionsEndpoints) {
  const Message m = sample_message();
  const std::string text = m.describe();
  EXPECT_NE(text.find("P2"), std::string::npos);
  EXPECT_NE(text.find("P5"), std::string::npos);
  EXPECT_NE(text.find("rexmit"), std::string::npos);
}

TEST(TokenTest, WireSizeIndependentOfSystemSize) {
  Token t;
  t.from = 3;
  t.failed = {2, 100};
  const std::size_t bare = t.wire_size();
  t.origin_pid = 1;  // attribution fields are not wire content
  t.origin_ver = 9;
  EXPECT_EQ(t.wire_size(), bare);
}

TEST(TokenTest, RestoredClockGrowsWireSize) {
  Token t;
  t.from = 0;
  t.failed = {0, 5};
  const std::size_t bare = t.wire_size();
  t.restored_clock = Ftvc(0, 32);
  EXPECT_GT(t.wire_size(), bare + 32);
}

TEST(TokenTest, DescribeShowsFailedEntry) {
  Token t;
  t.from = 7;
  t.failed = {1, 42};
  const std::string text = t.describe();
  EXPECT_NE(text.find("P7"), std::string::npos);
  EXPECT_NE(text.find("(1,42)"), std::string::npos);
}

}  // namespace
}  // namespace optrec
