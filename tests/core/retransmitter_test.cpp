#include "src/core/retransmitter.h"

#include <gtest/gtest.h>

namespace optrec {
namespace {

Message make_msg(ProcessId dst, std::uint64_t seq, Ftvc clock) {
  Message m;
  m.src = 0;
  m.dst = dst;
  m.src_version = 0;
  m.send_seq = seq;
  m.clock = std::move(clock);
  m.payload = {1};
  return m;
}

struct RetransmitterTest : ::testing::Test {
  RetransmitterTest() : history(0, 3) {}
  Retransmitter rex;
  History history;
};

TEST_F(RetransmitterTest, CollectsConcurrentSendsToFailedProcess) {
  Ftvc sender(0, 3);
  const Ftvc at_send = sender;
  sender.tick_send();
  rex.record(make_msg(1, 0, at_send));
  rex.record(make_msg(2, 1, sender));  // different destination

  // The failed process restored a state that never saw our send: the send
  // clock is concurrent with (not dominated by) the restored clock.
  const Ftvc restored(1, 3);
  const auto out = rex.collect_for(1, restored, history);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 1u);
  EXPECT_EQ(out[0].send_seq, 0u);
}

TEST_F(RetransmitterTest, ResendsEvenWhenRestoredClockDominates) {
  // Clock dominance does NOT imply the message was received (it can arise
  // transitively), so a dominated send is still retransmitted; the receiver
  // deduplicates recovered receipts instead (see collect_for's note).
  Ftvc sender(0, 3);
  const Ftvc at_send = sender;
  sender.tick_send();
  rex.record(make_msg(1, 0, at_send));

  Ftvc restored(1, 3);
  restored.merge_deliver(at_send);
  EXPECT_EQ(rex.collect_for(1, restored, history).size(), 1u);
}

TEST_F(RetransmitterTest, SkipsObsoleteSends) {
  // A send that itself depends on lost states of P2 must not be resent.
  Ftvc p2(2, 3);
  p2.tick_send();
  p2.tick_send();  // ts 3
  Ftvc sender(0, 3);
  sender.merge_deliver(p2);  // depends on P2 ts 3
  rex.record(make_msg(1, 0, sender));
  history.observe_token(2, {0, 1});  // P2's states beyond ts 1 are lost

  EXPECT_TRUE(rex.collect_for(1, Ftvc(1, 3), history).empty());
}

TEST_F(RetransmitterTest, ReplayedSendOverwritesIdentically) {
  const Ftvc clock(0, 3);
  rex.record(make_msg(1, 0, clock));
  rex.record(make_msg(1, 0, clock));  // replayed stamp of the same send
  EXPECT_EQ(rex.size(), 1u);
}

TEST_F(RetransmitterTest, PruneDominated) {
  Ftvc early(0, 3);
  Ftvc late(0, 3);
  for (int i = 0; i < 5; ++i) late.tick_send();
  rex.record(make_msg(1, 0, early));
  rex.record(make_msg(1, 1, late));

  Ftvc floor(1, 3);
  floor.merge_deliver(early);
  EXPECT_EQ(rex.prune_dominated(floor), 1u);
  EXPECT_EQ(rex.size(), 1u);
}

TEST_F(RetransmitterTest, ClearEmpties) {
  rex.record(make_msg(1, 0, Ftvc(0, 3)));
  rex.clear();
  EXPECT_EQ(rex.size(), 0u);
}

}  // namespace
}  // namespace optrec
