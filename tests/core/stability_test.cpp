// Stability tracker + garbage collector tests (paper Remark 2 machinery).
#include <gtest/gtest.h>

#include "src/core/garbage_collector.h"
#include "src/core/output_commit.h"

namespace optrec {
namespace {

TEST(StabilityTrackerTest, SeededWithVersionZero) {
  const StabilityTracker t(3);
  EXPECT_EQ(t.stable_ts(0, 0), 0u);
  EXPECT_EQ(t.stable_ts(2, 0), 0u);
  EXPECT_FALSE(t.stable_ts(0, 1).has_value());
}

TEST(StabilityTrackerTest, NoteStableMergesByMax) {
  StabilityTracker t(2);
  t.note_stable(1, 0, 5);
  t.note_stable(1, 0, 3);
  EXPECT_EQ(t.stable_ts(1, 0), 5u);
  t.note_stable(1, 0, 9);
  EXPECT_EQ(t.stable_ts(1, 0), 9u);
}

TEST(StabilityTrackerTest, CoversRequiresEveryEntry) {
  StabilityTracker t(2);
  Ftvc clock(0, 2);        // [(0,1) (0,0)]
  EXPECT_FALSE(t.covers(clock)) << "own ts 1 exceeds stable 0";
  t.note_stable(0, 0, 1);
  EXPECT_TRUE(t.covers(clock));
  clock.tick_send();       // ts 2
  EXPECT_FALSE(t.covers(clock));
}

TEST(StabilityTrackerTest, CoversFailsOnUnknownVersion) {
  StabilityTracker t(2);
  Ftvc clock(0, 2);
  clock.on_restart();  // version 1, ts 0
  EXPECT_FALSE(t.covers(clock));
  t.note_stable(0, 1, 0);
  EXPECT_TRUE(t.covers(clock));
}

TEST(StabilityTrackerTest, GossipRoundTrip) {
  StabilityTracker a(2);
  a.note_stable(0, 0, 7);
  a.note_stable(1, 2, 3);
  StabilityTracker b(2);
  b.merge_encoded(a.encode());
  EXPECT_EQ(b.stable_ts(0, 0), 7u);
  EXPECT_EQ(b.stable_ts(1, 2), 3u);
}

TEST(StabilityTrackerTest, MergeObjects) {
  StabilityTracker a(2), b(2);
  a.note_stable(0, 0, 4);
  b.note_stable(0, 0, 9);
  a.merge(b);
  EXPECT_EQ(a.stable_ts(0, 0), 9u);
}

// --- GC ------------------------------------------------------------------

Checkpoint make_ckpt(std::uint64_t delivered, Ftvc clock) {
  Checkpoint c;
  c.delivered_count = delivered;
  c.clock = std::move(clock);
  return c;
}

Message make_msg(std::uint64_t seq) {
  Message m;
  m.src = 0;
  m.dst = 1;
  m.send_seq = seq;
  return m;
}

TEST(GarbageCollectorTest, NoopWhenNothingCovered) {
  StableStorage storage;
  Ftvc clock(0, 2);
  clock.tick_send();  // ts 2 — beyond the seeded stability
  storage.checkpoints().append(make_ckpt(0, clock));
  const StabilityTracker tracker(2);
  const GcResult result = run_gc(storage, tracker);
  EXPECT_EQ(result.checkpoints_reclaimed, 0u);
  EXPECT_EQ(result.log_entries_reclaimed, 0u);
}

TEST(GarbageCollectorTest, ReclaimsBehindCoveredCheckpoint) {
  StableStorage storage;
  Ftvc c0(0, 2);                         // ts 1
  Ftvc c1 = c0;
  c1.tick_send();                        // ts 2
  Ftvc c2 = c1;
  c2.tick_send();                        // ts 3
  storage.checkpoints().append(make_ckpt(0, c0));
  storage.checkpoints().append(make_ckpt(4, c1));
  storage.checkpoints().append(make_ckpt(8, c2));
  for (std::uint64_t i = 0; i < 8; ++i) storage.log().append(make_msg(i));
  storage.log().flush();

  StabilityTracker tracker(2);
  tracker.note_stable(0, 0, 2);  // covers c1 but not c2

  const GcResult result = run_gc(storage, tracker);
  EXPECT_EQ(result.checkpoints_reclaimed, 1u);   // c0 goes
  EXPECT_EQ(result.log_entries_reclaimed, 4u);   // entries 0..3
  EXPECT_EQ(storage.checkpoints().at(0).delivered_count, 4u);
  EXPECT_EQ(storage.log().base(), 4u);
  // Idempotent.
  const GcResult again = run_gc(storage, tracker);
  EXPECT_EQ(again.checkpoints_reclaimed, 0u);
}

TEST(GarbageCollectorTest, EmptyStorageIsSafe) {
  StableStorage storage;
  const StabilityTracker tracker(2);
  const GcResult result = run_gc(storage, tracker);
  EXPECT_EQ(result.checkpoints_reclaimed, 0u);
}

}  // namespace
}  // namespace optrec
