// Test support: a scriptable app and message-crafting helpers that let
// scenario tests drive the exact interleavings of the paper's figures.
//
// A ScriptApp payload is a list of (destination, nested payload) pairs; on
// delivery the app issues exactly those sends. Tests hand-deliver crafted
// root commands by calling Endpoint::on_message directly, capture the
// resulting protocol-stamped sends via the network tap, and deliver those in
// whatever order the figure requires. The network itself is configured with
// a huge delay so automatic deliveries never interfere.
#pragma once

#include <utility>
#include <vector>

#include "src/app/app.h"
#include "src/net/message.h"
#include "src/util/serialization.h"

namespace optrec::testing {

using SendList = std::vector<std::pair<ProcessId, Bytes>>;

inline Bytes encode_sends(const SendList& sends) {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(sends.size()));
  for (const auto& [dst, payload] : sends) {
    w.put_u32(dst);
    w.put_bytes(payload);
  }
  return w.take();
}

/// A payload that triggers no further sends.
inline Bytes leaf() { return encode_sends({}); }

class ScriptApp : public App {
 public:
  void on_start(AppContext&) override {}

  void on_message(AppContext& ctx, ProcessId /*src*/,
                  const Bytes& payload) override {
    Reader r(payload);
    const std::uint32_t count = r.get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const ProcessId dst = r.get_u32();
      const Bytes nested = r.get_bytes();
      ctx.send(dst, nested);
    }
    ++handled_;
  }

  Bytes snapshot() const override {
    Writer w;
    w.put_u64(handled_);
    return w.take();
  }
  void restore(const Bytes& state) override {
    Reader r(state);
    handled_ = r.get_u64();
  }

  std::uint64_t handled() const { return handled_; }

  static AppFactory factory() {
    return [](ProcessId, std::size_t) { return std::make_unique<ScriptApp>(); };
  }

 private:
  std::uint64_t handled_ = 0;
};

/// Craft a root command message as if `src` (with clock `src_clock`) had
/// sent it. `seq` defaults high to avoid colliding with real send counters.
inline Message craft(ProcessId src, ProcessId dst, const Ftvc& src_clock,
                     Bytes payload, std::uint64_t seq = 1000) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = src;
  m.dst = dst;
  m.src_version = src_clock.entry(src).ver;
  m.send_seq = seq;
  m.clock = src_clock;
  m.payload = std::move(payload);
  return m;
}

}  // namespace optrec::testing
