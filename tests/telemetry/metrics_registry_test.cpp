// MetricsRegistry: registration identity, collectors, deterministic
// rendering, and the multi-threaded hammer the TSan CI job runs — hot-path
// updates racing collect()/render calls must be exactly accounted and
// data-race free.
#include "src/telemetry/metrics_registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace optrec::telemetry {
namespace {

TEST(MetricsRegistryTest, CounterIdentityByNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("optrec_messages_sent_total", "help");
  Counter& b = reg.counter("optrec_messages_sent_total", "other help text");
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same instrument

  Counter& p0 = reg.counter("optrec_msgs", "help", {{"pid", "0"}});
  Counter& p1 = reg.counter("optrec_msgs", "help", {{"pid", "1"}});
  EXPECT_NE(&p0, &p1);

  a.inc();
  a.inc(4);
  EXPECT_EQ(a.value(), 5u);
  p1.store(77);
  EXPECT_EQ(p0.value(), 0u);
  EXPECT_EQ(p1.value(), 77u);
}

TEST(MetricsRegistryTest, GaugeSetAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("optrec_queue_depth", "help");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(MetricsRegistryTest, CollectReturnsSortedSamples) {
  MetricsRegistry reg;
  reg.counter("zzz_total", "h").inc(1);
  reg.counter("aaa_total", "h").inc(2);
  reg.gauge("mmm", "h", {{"pid", "1"}}).set(3);
  reg.gauge("mmm", "h", {{"pid", "0"}}).set(4);
  reg.histogram("lat_us", "h").observe(5.0);

  const std::vector<Sample> samples = reg.collect();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples[0].name, "aaa_total");
  EXPECT_EQ(samples[1].name, "lat_us");
  EXPECT_EQ(samples[1].kind, SampleKind::kHistogram);
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_EQ(samples[2].name, "mmm");
  EXPECT_EQ(samples[2].labels.at("pid"), "0");
  EXPECT_EQ(samples[3].labels.at("pid"), "1");
  EXPECT_EQ(samples[4].name, "zzz_total");
  EXPECT_DOUBLE_EQ(samples[4].value, 1.0);
}

TEST(MetricsRegistryTest, CollectorsAppendSamples) {
  MetricsRegistry reg;
  reg.add_collector([](std::vector<Sample>& out) {
    Sample s;
    s.name = "optrec_tcp_frames_tx_total";
    s.kind = SampleKind::kCounter;
    s.value = 42;
    out.push_back(std::move(s));
  });
  const std::vector<Sample> samples = reg.collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "optrec_tcp_frames_tx_total");
  EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
}

TEST(MetricsRegistryTest, PrometheusRendering) {
  MetricsRegistry reg;
  reg.counter("optrec_rollbacks_total", "Rollbacks performed.",
              {{"pid", "2"}})
      .inc(3);
  reg.gauge("optrec_quiet", "Node-quiet flag.").set(1);
  reg.histogram("optrec_latency_us", "Delivery latency.").observe(12.0);

  std::ostringstream os;
  reg.render_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP optrec_rollbacks_total Rollbacks performed."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE optrec_rollbacks_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("optrec_rollbacks_total{pid=\"2\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("optrec_quiet 1"), std::string::npos);
  // Histograms expand to _bucket/_sum/_count with a +Inf bucket.
  EXPECT_NE(text.find("optrec_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("optrec_latency_us_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonRenderingParses) {
  MetricsRegistry reg;
  reg.counter("optrec_messages_sent_total", "h").inc(9);
  reg.histogram("optrec_latency_us", "h").observe(100.0);
  std::ostringstream os;
  reg.render_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"optrec_messages_sent_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_EQ(json.find("\n\n"), std::string::npos);
}

// The TSan target: four writer threads on counters/gauges/histograms while
// a scraper thread renders continuously. Final counts must be exact.
TEST(MetricsRegistryTest, ConcurrentHammerExactCounts) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 25000;

  Counter& shared = reg.counter("optrec_shared_total", "h");
  AtomicHistogram& hist = reg.histogram("optrec_lat_us", "h");

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream os;
      reg.render_prometheus(os);
      reg.render_json(os);
      (void)reg.collect();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, &shared, &hist, t] {
      Counter& own = reg.counter("optrec_worker_total", "h",
                                 {{"pid", std::to_string(t)}});
      Gauge& depth = reg.gauge("optrec_depth", "h",
                               {{"pid", std::to_string(t)}});
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        own.inc();
        depth.set(i);
        hist.observe(static_cast<double>(i % 1000));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(shared.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("optrec_worker_total", "h",
                          {{"pid", std::to_string(t)}})
                  .value(),
              static_cast<std::uint64_t>(kIters));
  }
}

}  // namespace
}  // namespace optrec::telemetry
