// TelemetryHttpServer: standalone request/response behaviour on a manual
// Poller loop, and a live in-process TcpCluster scrape — the same
// /metrics, /metrics.json, /healthz, /cluster surface a Prometheus scraper
// hits on a real deployment.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/tcp/poller.h"
#include "src/tcp/tcp_cluster.h"
#include "src/telemetry/http_endpoint.h"
#include "src/telemetry/metrics_registry.h"
#include "src/util/json.h"

namespace optrec {
namespace {

using telemetry::http_get;

// Drives a TelemetryHttpServer exactly the way TcpTransport's IO thread
// does: one Poller, handle() per ready event.
class ServerLoop {
 public:
  explicit ServerLoop(telemetry::TelemetryHttpServer& server)
      : server_(server) {
    server_.attach(poller_);
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        for (const Poller::Event& ev : poller_.wait(20)) {
          server_.handle(poller_, ev);
        }
      }
    });
  }
  ~ServerLoop() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  telemetry::TelemetryHttpServer& server_;
  Poller poller_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(TelemetryEndpointTest, ServesRoutesAndRejectsUnknownPaths) {
  telemetry::MetricsRegistry reg;
  reg.counter("optrec_messages_sent_total", "h").inc(12);

  telemetry::TelemetryHttpServer server("127.0.0.1", 0);
  ASSERT_NE(server.port(), 0);
  server.route("/metrics", "text/plain; version=0.0.4", [&reg] {
    std::ostringstream os;
    reg.render_prometheus(os);
    return os.str();
  });
  server.route("/healthz", "text/plain", [] { return std::string("ok\n"); });
  ServerLoop loop(server);

  const std::string metrics = http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(metrics.find("optrec_messages_sent_total 12"), std::string::npos);
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/healthz"), "ok\n");
  // Unknown path -> non-200 -> http_get throws.
  EXPECT_THROW(http_get("127.0.0.1", server.port(), "/nope"),
               std::runtime_error);
  EXPECT_GE(server.requests_served(), 3u);
}

TEST(TelemetryEndpointTest, SequentialScrapesSeeLiveValues) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("optrec_ticks_total", "h");
  telemetry::TelemetryHttpServer server("127.0.0.1", 0);
  server.route("/metrics", "text/plain; version=0.0.4", [&reg] {
    std::ostringstream os;
    reg.render_prometheus(os);
    return os.str();
  });
  ServerLoop loop(server);

  for (int i = 1; i <= 3; ++i) {
    c.inc();
    const std::string body =
        http_get("127.0.0.1", server.port(), "/metrics");
    EXPECT_NE(body.find("optrec_ticks_total " + std::to_string(i)),
              std::string::npos);
  }
}

// The acceptance-shaped check: a real loopback cluster with the endpoint
// enabled, scraped mid-run. The settle window keeps the fleet alive long
// enough for the scrapes to land deterministically.
TEST(TelemetryEndpointTest, LiveClusterScrape) {
  TcpClusterConfig config;
  config.n = 4;
  config.nodes = 2;
  config.seed = 7;
  config.workload.intensity = 5;
  config.workload.depth = 24;
  config.workload.all_seed = true;
  config.settle = millis(600);
  config.time_cap = millis(20000);
  config.enable_oracle = false;
  config.telemetry = true;  // ephemeral telemetry ports

  TcpCluster cluster(config);
  const std::uint16_t port0 = cluster.node(0).telemetry_port();
  const std::uint16_t port1 = cluster.node(1).telemetry_port();
  ASSERT_NE(port0, 0);
  ASSERT_NE(port1, 0);

  TcpClusterResult result;
  std::thread runner([&] { result = cluster.run(); });

  // Scrape every node until all three routes answered (retrying while the
  // sockets come up; the settle window guarantees the run outlives this).
  std::string prom, json_body, cluster_body;
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      prom = http_get("127.0.0.1", port0, "/metrics");
      json_body = http_get("127.0.0.1", port1, "/metrics.json");
      cluster_body = http_get("127.0.0.1", port0, "/cluster");
      EXPECT_EQ(http_get("127.0.0.1", port1, "/healthz"), "ok\n");
      break;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  runner.join();

  ASSERT_TRUE(result.quiesced);
  ASSERT_FALSE(prom.empty()) << "scrape never succeeded";

  // Prometheus exposition with live protocol and socket counters.
  EXPECT_NE(prom.find("# TYPE optrec_node_info gauge"), std::string::npos);
  EXPECT_NE(prom.find("optrec_node_info{node=\"0\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("optrec_tcp_frames_tx_total"), std::string::npos);
  EXPECT_NE(prom.find("optrec_delivery_latency_us_bucket"),
            std::string::npos);

  // JSON snapshot parses and carries the same families.
  const JsonValue snap = JsonValue::parse(json_body);
  const auto& metrics = snap.find("metrics")->as_array();
  EXPECT_FALSE(metrics.empty());
  bool saw_latency = false;
  for (const JsonValue& m : metrics) {
    if (m.find("name")->as_string() == "optrec_delivery_latency_us") {
      saw_latency = true;
      EXPECT_NE(m.find("p50"), nullptr);
    }
  }
  EXPECT_TRUE(saw_latency);

  // The cluster table has a row for this node (and, once gossip has
  // arrived, its peers).
  const JsonValue table = JsonValue::parse(cluster_body);
  EXPECT_EQ(table.u64_or("node", 99), 0u);
  EXPECT_TRUE(table.find("coordinator")->as_bool());
  EXPECT_FALSE(table.find("rows")->as_array().empty());
}

}  // namespace
}  // namespace optrec
