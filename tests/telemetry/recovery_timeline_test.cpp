// analyze_recovery_timeline: phase attribution, monotone-clamped
// boundaries, the exact phase-sum == unavailability identity, and the
// cluster-wide window union.
#include "src/telemetry/recovery_timeline.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/util/json.h"

namespace optrec::telemetry {
namespace {

std::uint64_t next_seq = 0;

TraceEvent ev(TraceEventType type, SimTime at, ProcessId pid) {
  TraceEvent e;
  e.seq = next_seq++;
  e.at = at;
  e.type = type;
  e.pid = pid;
  return e;
}

// The canonical single-failure story: P1 crashes at t=1000, announces at
// 1500, two survivors log the token (2000, 2200), one rolls back at 2100
// (before dissemination finishes — the clamp must absorb it), replay at
// 2400, restart at 2500, first fresh delivery at 3000.
std::vector<TraceEvent> one_failure(SimTime base = 0) {
  std::vector<TraceEvent> events;
  TraceEvent crash = ev(TraceEventType::kCrash, base + 1000, 1);
  crash.clock = {0, 900};
  crash.detail = 3;  // deliveries lost with volatile state
  events.push_back(crash);

  TraceEvent bcast = ev(TraceEventType::kTokenBroadcast, base + 1500, 1);
  bcast.origin = 1;
  bcast.origin_ver = 0;
  bcast.ref = {0, 400};
  events.push_back(bcast);

  for (SimTime at : {base + 2000, base + 2200}) {
    TraceEvent tok = ev(TraceEventType::kTokenProcess, at, at % 2);
    tok.origin = 1;
    tok.origin_ver = 0;
    tok.ref = {0, 400};
    events.push_back(tok);
  }

  TraceEvent rb = ev(TraceEventType::kRollback, base + 2100, 0);
  rb.origin = 1;
  rb.origin_ver = 0;
  rb.detail = 2;  // states undone
  events.push_back(rb);

  TraceEvent rp = ev(TraceEventType::kReplay, base + 2400, 1);
  events.push_back(rp);
  events.push_back(ev(TraceEventType::kRestart, base + 2500, 1));
  events.push_back(ev(TraceEventType::kDeliver, base + 3000, 1));
  return events;
}

TEST(RecoveryTimelineTest, SingleFailurePhases) {
  const RecoveryTimelineReport report =
      analyze_recovery_timeline(one_failure());
  EXPECT_EQ(report.time_base, "run_us");  // no wall stamps
  ASSERT_EQ(report.failures.size(), 1u);
  const FailureTimeline& f = report.failures[0];
  EXPECT_EQ(f.pid, 1u);
  EXPECT_EQ(f.failed_version, 0u);
  EXPECT_TRUE(f.restarted);
  EXPECT_TRUE(f.complete);

  EXPECT_EQ(f.t_crash, 1000u);
  EXPECT_EQ(f.t_detect, 1500u);
  EXPECT_EQ(f.t_disseminate, 2200u);
  // The rollback at 2100 predates the last token-process; the monotone
  // clamp folds it into a zero-length phase instead of a negative one.
  EXPECT_EQ(f.t_rollback, 2200u);
  EXPECT_EQ(f.t_restart, 2500u);
  EXPECT_EQ(f.t_resume, 3000u);

  EXPECT_EQ(f.detection_us(), 500u);
  EXPECT_EQ(f.dissemination_us(), 700u);
  EXPECT_EQ(f.rollback_us(), 0u);
  EXPECT_EQ(f.replay_us(), 300u);
  EXPECT_EQ(f.resume_us(), 500u);
  EXPECT_EQ(f.detection_us() + f.dissemination_us() + f.rollback_us() +
                f.replay_us() + f.resume_us(),
            f.unavailability_us());
  EXPECT_EQ(f.unavailability_us(), 2000u);
  EXPECT_EQ(report.cluster_unavailability_us, 2000u);

  EXPECT_EQ(f.tokens_processed, 2u);
  EXPECT_EQ(f.rollbacks, 1u);
  EXPECT_EQ(f.states_rolled_back, 2u);
  EXPECT_EQ(f.messages_replayed, 1u);
  EXPECT_EQ(f.deliveries_lost, 3u);
}

TEST(RecoveryTimelineTest, IncompleteFailureInheritsBoundaries) {
  // Run ends after the token broadcast: no dissemination, rollback,
  // restart, or resume. Every later boundary inherits its predecessor and
  // the identity still holds with zero-length tail phases.
  std::vector<TraceEvent> events;
  TraceEvent crash = ev(TraceEventType::kCrash, 100, 2);
  crash.clock = {1, 50};
  events.push_back(crash);
  TraceEvent bcast = ev(TraceEventType::kTokenBroadcast, 250, 2);
  bcast.origin = 2;
  bcast.origin_ver = 1;
  bcast.ref = {1, 30};
  events.push_back(bcast);

  const RecoveryTimelineReport report = analyze_recovery_timeline(events);
  ASSERT_EQ(report.failures.size(), 1u);
  const FailureTimeline& f = report.failures[0];
  EXPECT_FALSE(f.restarted);
  EXPECT_FALSE(f.complete);
  EXPECT_EQ(f.t_detect, 250u);
  EXPECT_EQ(f.t_disseminate, 250u);
  EXPECT_EQ(f.t_rollback, 250u);
  EXPECT_EQ(f.t_restart, 250u);
  EXPECT_EQ(f.t_resume, 250u);
  EXPECT_EQ(f.unavailability_us(), 150u);
  EXPECT_EQ(report.cluster_unavailability_us, 150u);
}

TEST(RecoveryTimelineTest, DeliverBeforeRestartDoesNotComplete) {
  std::vector<TraceEvent> events;
  TraceEvent crash = ev(TraceEventType::kCrash, 100, 3);
  events.push_back(crash);
  // A delivery BEFORE restart must not close the failure (replayed state
  // is not fresh work).
  events.push_back(ev(TraceEventType::kDeliver, 200, 3));
  const RecoveryTimelineReport report = analyze_recovery_timeline(events);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_FALSE(report.failures[0].complete);
}

TEST(RecoveryTimelineTest, OverlappingWindowsUnionOnce) {
  // Failure A spans [1000, 3000), failure B (different pid) [2000, 4000):
  // the union is 3000 us, not the 2000+2000 sum.
  std::vector<TraceEvent> events = one_failure();
  TraceEvent crash = ev(TraceEventType::kCrash, 2000, 5);
  crash.clock = {0, 0};
  events.push_back(crash);
  events.push_back(ev(TraceEventType::kRestart, 3500, 5));
  events.push_back(ev(TraceEventType::kDeliver, 4000, 5));

  const RecoveryTimelineReport report = analyze_recovery_timeline(events);
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].unavailability_us(), 2000u);
  EXPECT_EQ(report.failures[1].unavailability_us(), 2000u);
  EXPECT_EQ(report.cluster_unavailability_us, 3000u);
}

TEST(RecoveryTimelineTest, DisjointWindowsSum) {
  std::vector<TraceEvent> events = one_failure();
  const std::vector<TraceEvent> later = one_failure(/*base=*/10000);
  events.insert(events.end(), later.begin(), later.end());
  const RecoveryTimelineReport report = analyze_recovery_timeline(events);
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.cluster_unavailability_us, 4000u);
}

TEST(RecoveryTimelineTest, WallClockBaseWhenAllStamped) {
  std::vector<TraceEvent> events = one_failure();
  for (TraceEvent& e : events) e.wall_us = 5'000'000 + e.at;
  const RecoveryTimelineReport report = analyze_recovery_timeline(events);
  EXPECT_EQ(report.time_base, "wall_us");
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].t_crash, 5'001'000u);
  EXPECT_EQ(report.failures[0].unavailability_us(), 2000u);
}

TEST(RecoveryTimelineTest, JsonOutputCarriesIdentity) {
  const RecoveryTimelineReport report =
      analyze_recovery_timeline(one_failure());
  std::ostringstream os;
  write_recovery_timeline_json(os, report);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "optrec-recovery-timeline-v1");
  EXPECT_EQ(doc.u64_or("failure_count", 0), 1u);
  EXPECT_EQ(doc.u64_or("cluster_unavailability_us", 0), 2000u);
  const auto& failures = doc.find("failures")->as_array();
  ASSERT_EQ(failures.size(), 1u);
  const JsonValue& f = failures[0];
  EXPECT_EQ(f.u64_or("detection_us", 0) + f.u64_or("dissemination_us", 9) +
                f.u64_or("rollback_us", 9) + f.u64_or("replay_us", 9) +
                f.u64_or("resume_us", 9),
            f.u64_or("unavailability_us", 1));
}

}  // namespace
}  // namespace optrec::telemetry
