// merge_traces: cross-node matching by FTVC piggyback keys, wall-clock
// rebasing, skew clamping, and violation reporting on synthetic two-node
// traces where every expectation is exact.
#include "src/telemetry/trace_merge.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace optrec::telemetry {
namespace {

constexpr std::uint64_t kWallBase = 1'700'000'000'000'000ull;

TraceEvent ev(TraceEventType type, std::uint64_t seq, std::uint64_t wall_off,
              ProcessId pid, std::uint32_t node) {
  TraceEvent e;
  e.seq = seq;
  e.at = wall_off;  // per-node run clock; rebased when wall stamps exist
  e.wall_us = kWallBase + wall_off;
  e.type = type;
  e.pid = pid;
  e.node = node;
  return e;
}

TraceEvent send_ev(std::uint64_t seq, std::uint64_t wall_off, ProcessId from,
                   ProcessId to, std::uint64_t send_seq, Version ver,
                   std::uint32_t node) {
  TraceEvent e = ev(TraceEventType::kSend, seq, wall_off, from, node);
  e.peer = to;
  e.send_seq = send_seq;
  e.msg_version = ver;
  e.mclock = {{ver, 10}, {0, 0}};
  return e;
}

TraceEvent deliver_ev(std::uint64_t seq, std::uint64_t wall_off, ProcessId to,
                      ProcessId from, std::uint64_t send_seq, Version ver,
                      std::uint32_t node) {
  TraceEvent e = ev(TraceEventType::kDeliver, seq, wall_off, to, node);
  e.peer = from;
  e.send_seq = send_seq;
  e.msg_version = ver;
  e.mclock = {{ver, 10}, {0, 0}};
  return e;
}

TEST(TraceMergeTest, HealthyTwoNodeMessage) {
  std::vector<std::vector<TraceEvent>> inputs(2);
  inputs[0].push_back(send_ev(0, 100, /*from=*/0, /*to=*/1, 7, 1, /*node=*/0));
  inputs[1].push_back(
      deliver_ev(0, 250, /*to=*/1, /*from=*/0, 7, 1, /*node=*/1));

  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.nodes, 2u);
  EXPECT_EQ(merged.matched_messages, 1u);
  EXPECT_EQ(merged.cross_node_edges, 1u);
  EXPECT_TRUE(merged.violations.empty());
  EXPECT_EQ(merged.wall0_us, kWallBase + 100);

  ASSERT_EQ(merged.events.size(), 2u);
  // Rebased to micros since the earliest event; seq renumbered to the
  // merged order with the send first.
  EXPECT_EQ(merged.events[0].type, TraceEventType::kSend);
  EXPECT_EQ(merged.events[0].at, 0u);
  EXPECT_EQ(merged.events[0].seq, 0u);
  EXPECT_EQ(merged.events[1].type, TraceEventType::kDeliver);
  EXPECT_EQ(merged.events[1].at, 150u);
  EXPECT_EQ(merged.events[1].seq, 1u);
  // node/wall_us survive the merge (Perfetto lanes key off them).
  EXPECT_EQ(merged.events[1].node, 1u);
  EXPECT_EQ(merged.events[1].wall_us, kWallBase + 250);
}

TEST(TraceMergeTest, ClockSkewInversionFlaggedAndClamped) {
  // The receiver's wall clock runs 100us behind: its deliver is stamped
  // BEFORE the matched send. The merge must report the inversion and clamp
  // the deliver to the send's instant so the timeline stays causal.
  std::vector<std::vector<TraceEvent>> inputs(2);
  inputs[0].push_back(send_ev(0, 200, 0, 1, 7, 1, 0));
  inputs[1].push_back(deliver_ev(0, 150, 1, 0, 7, 1, 1));

  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.matched_messages, 1u);
  ASSERT_EQ(merged.violations.size(), 1u);
  EXPECT_NE(merged.violations[0].find("receive before matched send"),
            std::string::npos);

  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].type, TraceEventType::kSend);
  EXPECT_EQ(merged.events[1].type, TraceEventType::kDeliver);
  // wall0 is the (skewed) deliver stamp; the send lands at 50 and the
  // deliver is clamped up to it.
  EXPECT_EQ(merged.events[0].at, 50u);
  EXPECT_EQ(merged.events[1].at, 50u);
}

TEST(TraceMergeTest, DisagreeingPiggybackIsADifferentMessage) {
  // Same (pid, send_seq, msg_version) key but a different piggybacked
  // clock: not the same message, so no match and no false violation.
  std::vector<std::vector<TraceEvent>> inputs(2);
  inputs[0].push_back(send_ev(0, 100, 0, 1, 7, 1, 0));
  TraceEvent d = deliver_ev(0, 250, 1, 0, 7, 1, 1);
  d.mclock = {{1, 999}, {0, 0}};
  inputs[1].push_back(d);

  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.matched_messages, 0u);
  EXPECT_TRUE(merged.violations.empty());
}

TEST(TraceMergeTest, RespawnedIncarnationDoesNotStealOldDeliveries) {
  // The kill/respawn shape: node 1's first incarnation sent a message that
  // node 0 delivered at t=150, then node 1 was SIGKILLed (its trace lost)
  // and the respawn reused send_seq=7 much later with an advanced clock.
  // The old delivery must stay unmatched — pinning it to the new send
  // would invert time — while the new delivery matches normally.
  std::vector<std::vector<TraceEvent>> inputs(2);
  TraceEvent new_send = send_ev(0, 500'000, 2, 1, 7, 0, 1);
  new_send.mclock = {{0, 0}, {0, 77}, {0, 0}};
  inputs[1].push_back(new_send);
  TraceEvent old_deliver = deliver_ev(0, 150, 1, 2, 7, 0, 0);
  old_deliver.mclock = {{0, 0}, {0, 12}, {0, 0}};  // first incarnation clock
  inputs[0].push_back(old_deliver);
  TraceEvent new_deliver = deliver_ev(1, 500'200, 1, 2, 7, 0, 0);
  new_deliver.mclock = new_send.mclock;
  inputs[0].push_back(new_deliver);

  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.matched_messages, 1u);
  EXPECT_TRUE(merged.violations.empty())
      << "first: " << merged.violations.front();
}

TEST(TraceMergeTest, SeededRespawnPairsResendWithDuplicateDiscard) {
  // The hardest collision: a SIGKILLed node's respawn re-runs the same
  // seeded workload, re-generating a send that is byte-identical to the
  // lost original — same key AND same piggybacked clock. The receiver
  // already delivered the original and discards the re-sent copy as a
  // duplicate. One-to-one time-ordered matching must pair the new send
  // with the discard it caused and leave the old delivery unmatched,
  // instead of pinning it to the later send (a false inversion).
  std::vector<std::vector<TraceEvent>> inputs(2);
  inputs[1].push_back(send_ev(0, 497'000, 2, 1, 7, 0, 1));
  inputs[0].push_back(deliver_ev(0, 150, 1, 2, 7, 0, 0));
  TraceEvent discard = deliver_ev(1, 500'000, 1, 2, 7, 0, 0);
  discard.type = TraceEventType::kDiscardDuplicate;
  inputs[0].push_back(discard);

  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.matched_messages, 1u);  // send -> discard only
  EXPECT_EQ(merged.cross_node_edges, 1u);
  EXPECT_TRUE(merged.violations.empty())
      << "first: " << merged.violations.front();
  // The unmatched old delivery keeps its own (early) instant.
  ASSERT_EQ(merged.events.size(), 3u);
  EXPECT_EQ(merged.events[0].type, TraceEventType::kDeliver);
  EXPECT_EQ(merged.events[1].type, TraceEventType::kSend);
  EXPECT_EQ(merged.events[2].type, TraceEventType::kDiscardDuplicate);
}

TEST(TraceMergeTest, TokenBroadcastMatchesProcess) {
  std::vector<std::vector<TraceEvent>> inputs(2);
  TraceEvent b = ev(TraceEventType::kTokenBroadcast, 0, 100, /*pid=*/1, 0);
  b.ref = {1, 40};
  b.origin = 1;
  b.origin_ver = 1;
  inputs[0].push_back(b);
  TraceEvent p = ev(TraceEventType::kTokenProcess, 0, 300, /*pid=*/2, 1);
  p.peer = 1;  // announcer
  p.ref = {1, 40};
  p.origin = 1;
  p.origin_ver = 1;
  inputs[1].push_back(p);

  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.matched_tokens, 1u);
  EXPECT_EQ(merged.cross_node_edges, 1u);
  EXPECT_TRUE(merged.violations.empty());
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].type, TraceEventType::kTokenBroadcast);
}

TEST(TraceMergeTest, UnmatchedReceiveIsNotAnError) {
  // The sender's trace file is missing (node never flushed before a kill):
  // the deliver stays unmatched but the merge still succeeds cleanly.
  std::vector<std::vector<TraceEvent>> inputs(1);
  inputs[0].push_back(deliver_ev(0, 100, 1, 0, 7, 1, 1));
  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.matched_messages, 0u);
  EXPECT_TRUE(merged.violations.empty());
  EXPECT_EQ(merged.events.size(), 1u);
}

TEST(TraceMergeTest, NodeAssignedFromInputIndexWhenMissing) {
  // Pre-telemetry JSONL (no node field) and simulator traces merge by
  // input position.
  std::vector<std::vector<TraceEvent>> inputs(2);
  TraceEvent a = send_ev(0, 100, 0, 1, 7, 1, kNoTraceNode);
  TraceEvent b = deliver_ev(0, 250, 1, 0, 7, 1, kNoTraceNode);
  inputs[0].push_back(a);
  inputs[1].push_back(b);
  const MergedTrace merged = merge_traces(std::move(inputs));
  EXPECT_EQ(merged.nodes, 2u);
  EXPECT_EQ(merged.cross_node_edges, 1u);
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].node, 0u);
  EXPECT_EQ(merged.events[1].node, 1u);
}

TEST(TraceMergeTest, PerNodeSeqOrderPreservedUnderSkew) {
  // Two events on the same node whose wall stamps are inverted relative to
  // their seq order: the per-node emission chain must win, with the later
  // event clamped.
  std::vector<std::vector<TraceEvent>> inputs(1);
  inputs[0].push_back(ev(TraceEventType::kCheckpoint, 0, 500, 0, 0));
  inputs[0].push_back(ev(TraceEventType::kLogFlush, 1, 400, 0, 0));
  const MergedTrace merged = merge_traces(std::move(inputs));
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].type, TraceEventType::kCheckpoint);
  EXPECT_EQ(merged.events[1].type, TraceEventType::kLogFlush);
  EXPECT_GE(merged.events[1].at, merged.events[0].at);
}

TEST(TraceMergeTest, EmptyInputs) {
  const MergedTrace merged = merge_traces({});
  EXPECT_EQ(merged.nodes, 0u);
  EXPECT_TRUE(merged.events.empty());
  EXPECT_TRUE(merged.violations.empty());
}

}  // namespace
}  // namespace optrec::telemetry
