// End-to-end merge golden: a real 4-node loopback fleet where every node
// records its OWN TraceRecorder (the multi-process deployment shape —
// unlike TcpCluster's shared recorder), two processes crash mid-run, and
// the per-node traces are joined by merge_traces. The acceptance bar from
// docs/OBSERVABILITY.md: one timeline spanning all nodes, cross-node edges
// present, zero causality violations, and the recovery-timeline phase-sum
// identity holding on the merged trace.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/tcp/tcp_node.h"
#include "src/tcp/topology.h"
#include "src/telemetry/recovery_timeline.h"
#include "src/telemetry/trace_merge.h"

namespace optrec {
namespace {

std::uint64_t unix_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// CLOCK_REALTIME instant of this node's runtime-clock zero. Each estimate
// is biased low by the delay between the two reads, so the max of a few
// samples is the closest.
std::uint64_t wall_origin(const LiveClock& clock) {
  std::uint64_t best = 0;
  for (int i = 0; i < 5; ++i) {
    best = std::max(best, unix_micros() - clock.now());
  }
  return best;
}

TEST(TraceMergeClusterTest, FourNodeKillRecoverMergesClean) {
  constexpr std::size_t kN = 8;
  constexpr std::size_t kNodes = 4;

  TcpTopology topo =
      TcpTopology::loopback(kN, kNodes, /*base_port=*/0, "loopback", 0);

  std::vector<TraceRecorder> recorders(kNodes);
  std::vector<std::unique_ptr<TcpNode>> nodes;
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    TcpNodeConfig nc;
    nc.topology = topo;
    nc.node = id;
    nc.seed = 11;
    nc.workload.intensity = 6;
    nc.workload.depth = 32;
    nc.workload.all_seed = true;
    nc.process.flush_interval = millis(10);
    nc.process.checkpoint_interval = millis(50);
    nc.process.retransmit_on_failure = true;
    nc.crashes = {{millis(40), 1}, {millis(70), 5}};
    nc.time_cap = millis(20000);
    nc.trace = &recorders[id];
    nodes.push_back(std::make_unique<TcpNode>(std::move(nc)));
    recorders[id].set_origin(id, wall_origin(nodes.back()->clock()));
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    for (std::uint32_t j = 0; j < kNodes; ++j) {
      if (i != j) nodes[i]->set_peer_port(j, nodes[j]->listen_port());
    }
  }

  std::vector<TcpNodeResult> results(kNodes);
  std::vector<std::thread> threads;
  for (std::size_t id = 0; id < kNodes; ++id) {
    threads.emplace_back(
        [&, id] { results[id] = nodes[id]->run(); });
  }
  for (std::thread& t : threads) t.join();
  for (const TcpNodeResult& r : results) {
    EXPECT_TRUE(r.quiesced);
    EXPECT_EQ(r.exit_code, 0);
  }

  std::vector<std::vector<TraceEvent>> inputs;
  inputs.reserve(kNodes);
  for (TraceRecorder& r : recorders) {
    EXPECT_FALSE(r.empty());
    inputs.push_back(r.take());
  }

  const telemetry::MergedTrace merged =
      telemetry::merge_traces(std::move(inputs));
  EXPECT_EQ(merged.nodes, kNodes);
  EXPECT_GT(merged.matched_messages, 0u);
  EXPECT_GT(merged.cross_node_edges, 0u);
  EXPECT_TRUE(merged.violations.empty())
      << "first violation: " << merged.violations.front();

  // Merged order is causal: non-decreasing timestamps, seq renumbered
  // densely to the merged order.
  for (std::size_t i = 0; i < merged.events.size(); ++i) {
    EXPECT_EQ(merged.events[i].seq, i);
    if (i > 0) {
      EXPECT_GE(merged.events[i].at, merged.events[i - 1].at);
    }
  }

  // The merged trace is analyzable as one run: both injected crashes are
  // found, attributed, and the phase accounting identity holds.
  const telemetry::RecoveryTimelineReport report =
      telemetry::analyze_recovery_timeline(merged.events);
  EXPECT_EQ(report.time_base, "wall_us");
  ASSERT_GE(report.failures.size(), 2u);
  for (const telemetry::FailureTimeline& f : report.failures) {
    EXPECT_TRUE(f.restarted) << "P" << f.pid << " never restarted";
    EXPECT_EQ(f.detection_us() + f.dissemination_us() + f.rollback_us() +
                  f.replay_us() + f.resume_us(),
              f.unavailability_us());
  }
  EXPECT_GT(report.cluster_unavailability_us, 0u);
}

}  // namespace
}  // namespace optrec
