// FixedHistogram / AtomicHistogram: bucket accounting, percentile
// extraction, merging, and the concurrent hot path (run under TSan by the
// tsan CI job — observe() races against snapshot() by design).
#include "src/telemetry/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace optrec::telemetry {
namespace {

TEST(FixedHistogramTest, CountsSumMeanMax) {
  FixedHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.observe(10.0);
  h.observe(20.0);
  h.observe(60.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 90.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_DOUBLE_EQ(h.max(), 60.0);
}

TEST(FixedHistogramTest, PercentileInterpolatesWithinBucket) {
  // A custom two-bucket layout makes the interpolation arithmetic exact:
  // 10 samples in (0, 100], none above.
  FixedHistogram h(std::vector<double>{100.0, 200.0});
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  // All mass in the first bucket: p50 lands mid-bucket per Prometheus-style
  // linear interpolation.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(FixedHistogramTest, PercentileMonotoneOnLatencyLadder) {
  FixedHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const double p50 = h.percentile(0.50);
  const double p90 = h.percentile(0.90);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Generous envelope: the 1-2-5 ladder quantises, but not wildly.
  EXPECT_GT(p50, 200.0);
  EXPECT_LT(p50, 1000.0);
  EXPECT_GT(p99, 500.0);
}

TEST(FixedHistogramTest, MergeFromAddsBuckets) {
  FixedHistogram a;
  FixedHistogram b;
  a.observe(5.0);
  b.observe(7.0);
  b.observe(1000.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 1012.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(FixedHistogramTest, FromPartsRoundTrips) {
  FixedHistogram h;
  h.observe(3.0);
  h.observe(300.0);
  const FixedHistogram r = FixedHistogram::from_parts(
      h.bounds(), h.bucket_counts(), h.sum(), h.max());
  EXPECT_EQ(r.count(), h.count());
  EXPECT_DOUBLE_EQ(r.sum(), h.sum());
  EXPECT_DOUBLE_EQ(r.percentile(0.5), h.percentile(0.5));
}

TEST(AtomicHistogramTest, SnapshotMatchesObservations) {
  AtomicHistogram h;
  for (int i = 0; i < 100; ++i) h.observe(42.0);
  const FixedHistogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 100u);
  // Sum is tracked in 1/1024ths; 42.0 * 100 is exactly representable.
  EXPECT_NEAR(snap.sum(), 4200.0, 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 42.0);
}

TEST(AtomicHistogramTest, ConcurrentObserveAndSnapshot) {
  AtomicHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(i % 997));
      }
    });
  }
  // Snapshot concurrently — torn only by in-flight observations, never UB.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const FixedHistogram snap = h.snapshot();
    EXPECT_GE(snap.count(), last);
    last = snap.count();
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(h.snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace optrec::telemetry
