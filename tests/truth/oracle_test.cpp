#include <gtest/gtest.h>

#include "src/truth/causality_oracle.h"
#include "src/truth/recovery_line_oracle.h"

namespace optrec {
namespace {

TEST(CausalityOracleTest, HappensBeforeAlongProcessOrder) {
  CausalityOracle o;
  const StateId a = o.initial_state(0);
  const StateId sender = o.initial_state(1);
  const StateId b = o.delivery_state(0, a, sender);
  const StateId c = o.delivery_state(0, b, sender);
  EXPECT_TRUE(o.happens_before(a, b));
  EXPECT_TRUE(o.happens_before(a, c));
  EXPECT_FALSE(o.happens_before(c, a));
  EXPECT_FALSE(o.happens_before(a, a));
}

TEST(CausalityOracleTest, HappensBeforeThroughMessages) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  const StateId p2 = o.initial_state(2);
  const StateId r1 = o.delivery_state(1, p1, p0);   // P0 -> P1
  const StateId r2 = o.delivery_state(2, p2, r1);   // P1 -> P2
  EXPECT_TRUE(o.happens_before(p0, r2));
  EXPECT_FALSE(o.happens_before(r2, p0));
  EXPECT_FALSE(o.happens_before(p1, p0));
}

TEST(CausalityOracleTest, OrphanIsForwardClosureOfLost) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  const StateId lost = o.delivery_state(0, p0, p1);
  const StateId dependent = o.delivery_state(1, p1, lost);
  const StateId transitive = o.delivery_state(1, dependent, dependent);
  const StateId unrelated = o.initial_state(2);

  o.mark_lost({lost});
  EXPECT_TRUE(o.is_lost(lost));
  EXPECT_FALSE(o.is_orphan(lost)) << "lost states are lost, not orphan";
  EXPECT_TRUE(o.is_orphan(dependent));
  EXPECT_TRUE(o.is_orphan(transitive));
  EXPECT_FALSE(o.is_orphan(p0));
  EXPECT_FALSE(o.is_orphan(unrelated));
  EXPECT_TRUE(o.is_useful(p0));
  EXPECT_FALSE(o.is_useful(dependent));
}

TEST(CausalityOracleTest, OrphanCacheInvalidatedByNewLoss) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  const StateId s = o.delivery_state(1, p1, p0);
  EXPECT_FALSE(o.is_orphan(s));
  o.mark_lost({p0});
  EXPECT_TRUE(o.is_orphan(s));
}

TEST(CausalityOracleTest, MessageObsoleteness) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  const StateId lost = o.delivery_state(0, p0, p1);
  o.record_send(1, p0);
  o.record_send(2, lost);
  o.mark_lost({lost});
  EXPECT_FALSE(o.is_message_obsolete(1));
  EXPECT_TRUE(o.is_message_obsolete(2));
  EXPECT_THROW(o.is_message_obsolete(99), std::invalid_argument);
}

TEST(CausalityOracleTest, ConsistencyCheckFlagsOrphanFrontier) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  const StateId lost = o.delivery_state(0, p0, p1);
  const StateId orphan = o.delivery_state(1, p1, lost);
  o.mark_lost({lost});
  o.set_frontier(0, p0);
  o.set_frontier(1, orphan);
  const auto violations = o.check_consistency();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("orphan"), std::string::npos);

  // Rolling the orphan back (frontier moves to a useful state) clears it.
  o.set_frontier(1, p1);
  EXPECT_TRUE(o.check_consistency().empty());
}

TEST(CausalityOracleTest, RecoveryStateDependsOnlyOnRestored) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  const StateId lost = o.delivery_state(0, p0, p1);
  o.mark_lost({lost});
  const StateId recovery = o.recovery_state(0, p0);
  EXPECT_TRUE(o.happens_before(p0, recovery));
  EXPECT_FALSE(o.is_orphan(recovery));
  EXPECT_EQ(o.frontier(0), recovery);
}

TEST(CausalityOracleTest, IndexOfTracksPerProcessOrder) {
  CausalityOracle o;
  const StateId a = o.initial_state(0);
  const StateId x = o.initial_state(1);
  const StateId b = o.delivery_state(0, a, x);
  EXPECT_EQ(o.index_of(a), 0u);
  EXPECT_EQ(o.index_of(b), 1u);
  EXPECT_EQ(o.index_of(x), 0u);
  EXPECT_EQ(o.states_of(0).size(), 2u);
}

// --- Recovery line oracle (Johnson-Zwaenepoel fixpoint) -----------------

TEST(RecoveryLineTest, NoFailureKeepsEverything) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  o.delivery_state(1, p1, p0);
  const auto line = RecoveryLineOracle::max_recoverable(
      o, RecoveryLineOracle::caps_from_lost(o));
  EXPECT_EQ(line.surviving_prefix, (std::vector<std::size_t>{1, 2}));
}

TEST(RecoveryLineTest, DependentStatesFallWithTheLost) {
  CausalityOracle o;
  const StateId p0 = o.initial_state(0);
  const StateId p1 = o.initial_state(1);
  const StateId lost = o.delivery_state(0, p0, p1);   // P0 state 1
  const StateId dep = o.delivery_state(1, p1, lost);  // P1 state 1
  o.delivery_state(1, dep, dep);                      // P1 state 2
  o.mark_lost({lost});
  const auto line = RecoveryLineOracle::max_recoverable(
      o, RecoveryLineOracle::caps_from_lost(o));
  // P0 keeps only its initial state; P1's dependent suffix falls too.
  EXPECT_EQ(line.surviving_prefix, (std::vector<std::size_t>{1, 1}));
}

TEST(RecoveryLineTest, CascadingDependencyFixpoint) {
  CausalityOracle o;
  const StateId a0 = o.initial_state(0);
  const StateId b0 = o.initial_state(1);
  const StateId c0 = o.initial_state(2);
  const StateId a1 = o.delivery_state(0, a0, b0);
  const StateId b1 = o.delivery_state(1, b0, a1);  // depends on a1
  const StateId c1 = o.delivery_state(2, c0, b1);  // depends on b1
  (void)c1;
  o.mark_lost({a1});
  const auto line = RecoveryLineOracle::max_recoverable(
      o, RecoveryLineOracle::caps_from_lost(o));
  // a1 lost -> b1 falls -> c1 falls: two hops of the fixpoint.
  EXPECT_EQ(line.surviving_prefix, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(RecoveryLineTest, IndependentProcessesUnaffected) {
  CausalityOracle o;
  const StateId a0 = o.initial_state(0);
  const StateId b0 = o.initial_state(1);
  const StateId c0 = o.initial_state(2);
  const StateId a1 = o.delivery_state(0, a0, b0);
  o.delivery_state(2, c0, b0);  // P2 depends only on P1's initial state
  o.mark_lost({a1});
  const auto line = RecoveryLineOracle::max_recoverable(
      o, RecoveryLineOracle::caps_from_lost(o));
  EXPECT_EQ(line.surviving_prefix, (std::vector<std::size_t>{1, 1, 2}));
}

TEST(RecoveryLineTest, MatchesOrphanOracleOnSnapshot) {
  // The two oracles are independent computations of the same thing; on a
  // pre-recovery snapshot they must agree.
  CausalityOracle o;
  std::vector<StateId> frontier;
  for (ProcessId pid = 0; pid < 3; ++pid) {
    frontier.push_back(o.initial_state(pid));
  }
  // Build a little web.
  frontier[1] = o.delivery_state(1, frontier[1], frontier[0]);
  frontier[2] = o.delivery_state(2, frontier[2], frontier[1]);
  frontier[0] = o.delivery_state(0, frontier[0], frontier[2]);
  frontier[1] = o.delivery_state(1, frontier[1], frontier[0]);
  o.mark_lost({frontier[0]});  // P0's last state is lost

  const auto line = RecoveryLineOracle::max_recoverable(
      o, RecoveryLineOracle::caps_from_lost(o));
  for (ProcessId pid = 0; pid < 3; ++pid) {
    const auto& states = o.states_of(pid);
    for (std::size_t k = 0; k < states.size(); ++k) {
      const bool in_line = k < line.surviving_prefix[pid];
      EXPECT_EQ(in_line, o.is_useful(states[k]))
          << "P" << pid << " state " << k;
    }
  }
}

}  // namespace
}  // namespace optrec
