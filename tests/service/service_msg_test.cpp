// Service protocol codec: request/response round trips, stream framing
// reassembly, and decode fuzzing (a malicious client must only ever produce
// DecodeError, never UB).
#include <gtest/gtest.h>

#include <vector>

#include "src/service/service_msg.h"
#include "src/util/rng.h"

namespace optrec::service {
namespace {

TEST(ServiceMsg, RequestRoundTripsAllFields) {
  Request req;
  req.op = Op::kTransfer;
  req.client_id = 0xDEADBEEFCAFEULL;
  req.seq = (1ULL << 40) + 7;
  req.key = 0xFFFFFFFFFFFFFFFFULL;
  req.to_account = 12345;
  req.value = 999;

  const Request back = Request::decode(req.encode());
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.client_id, req.client_id);
  EXPECT_EQ(back.seq, req.seq);
  EXPECT_EQ(back.key, req.key);
  EXPECT_EQ(back.to_account, req.to_account);
  EXPECT_EQ(back.value, req.value);
}

TEST(ServiceMsg, ResponseRoundTripsAllFields) {
  Response resp;
  resp.status = Status::kWrongNode;
  resp.op = Op::kPut;
  resp.client_id = 42;
  resp.seq = 17;
  resp.key = 9;
  resp.value = 4096;
  resp.kver = 31;
  resp.owner = 6;

  const Response back = Response::decode(resp.encode());
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.op, resp.op);
  EXPECT_EQ(back.client_id, resp.client_id);
  EXPECT_EQ(back.seq, resp.seq);
  EXPECT_EQ(back.key, resp.key);
  EXPECT_EQ(back.value, resp.value);
  EXPECT_EQ(back.kver, resp.kver);
  EXPECT_EQ(back.owner, resp.owner);
}

TEST(ServiceMsg, KeyOwnerIsStableAndInRange) {
  for (std::size_t n : {1u, 3u, 8u}) {
    for (std::uint64_t key = 0; key < 256; ++key) {
      const ProcessId owner = key_owner(key, n);
      EXPECT_LT(owner, n);
      EXPECT_EQ(owner, key_owner(key, n)) << "unstable for key " << key;
    }
  }
}

TEST(ServiceMsg, FramesReassembleAcrossChunkBoundaries) {
  std::vector<Bytes> bodies;
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    Request req;
    req.op = Op::kPut;
    req.client_id = 100 + i;
    req.seq = i;
    req.key = i * 31;
    req.value = i;
    bodies.push_back(req.encode());
    append_frame(stream, bodies.back());
  }

  // Feed the byte stream one byte at a time, extracting whenever complete.
  Bytes buf;
  std::size_t pos = 0;
  std::size_t extracted = 0;
  for (std::uint8_t byte : stream) {
    buf.push_back(byte);
    while (auto body = next_frame(buf, &pos)) {
      ASSERT_LT(extracted, bodies.size());
      EXPECT_EQ(*body, bodies[extracted]);
      ++extracted;
    }
  }
  EXPECT_EQ(extracted, bodies.size());
}

TEST(ServiceMsg, IncompleteFrameReturnsNullopt) {
  Bytes stream;
  append_frame(stream, Request{}.encode());
  Bytes truncated(stream.begin(), stream.end() - 1);
  std::size_t pos = 0;
  EXPECT_EQ(next_frame(truncated, &pos), std::nullopt);
  EXPECT_EQ(pos, 0u);  // nothing consumed until the frame completes
}

TEST(ServiceMsg, OversizedFrameLengthThrows) {
  // A length header above kMaxServiceFrameBytes must be rejected before any
  // allocation in its size.
  Writer w;
  w.put_u64(kMaxServiceFrameBytes + 1);
  const Bytes buf = w.take();
  std::size_t pos = 0;
  EXPECT_THROW(next_frame(buf, &pos), DecodeError);
}

TEST(ServiceMsg, DecodeFuzzNeverCrashes) {
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    Bytes junk(rng.uniform(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      (void)Request::decode(junk);
    } catch (const DecodeError&) {
    }
    try {
      (void)Response::decode(junk);
    } catch (const DecodeError&) {
    }
    std::size_t pos = 0;
    try {
      while (next_frame(junk, &pos)) {
      }
    } catch (const DecodeError&) {
    }
  }
}

TEST(ServiceMsg, TruncatedEncodingsThrowNotCrash) {
  Request req;
  req.op = Op::kTransfer;
  req.client_id = 1ULL << 60;
  req.seq = 1ULL << 50;
  req.key = 77;
  req.to_account = 3;
  req.value = 12;
  const Bytes full = req.encode();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes prefix(full.begin(), full.begin() + cut);
    EXPECT_THROW((void)Request::decode(prefix), DecodeError) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace optrec::service
