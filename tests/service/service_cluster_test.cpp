// End-to-end service path over a real in-process TCP cluster: a raw socket
// client speaks the framed protocol to a serving node and the replies must
// come back correct, deduplicated, and — with a slow flush interval —
// measurably gated behind the Damani-Garg output-commit point (the
// replies_gated counter proves at least one reply waited for stability).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "src/service/service_msg.h"
#include "src/tcp/tcp_cluster.h"

namespace optrec {
namespace {

using service::Op;
using service::Request;
using service::Response;
using service::Status;

int dial_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << "connect to service port " << port;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_request(int fd, const Request& req) {
  Bytes wire;
  service::append_frame(wire, req.encode());
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking read of the next framed Response (5s socket timeout).
std::optional<Response> read_response(int fd, Bytes& buf, std::size_t& pos) {
  for (;;) {
    if (auto body = service::next_frame(buf, &pos)) {
      return Response::decode(*body);
    }
    std::uint8_t chunk[1024];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return std::nullopt;
    buf.insert(buf.end(), chunk, chunk + n);
  }
}

TEST(ServiceCluster, GatedRepliesFlowThroughRealSockets) {
  TcpClusterConfig config;
  config.n = 4;
  config.nodes = 2;
  config.seed = 11;
  config.serve = true;
  config.enable_oracle = false;  // client requests have no oracle records
  config.workload.kind = WorkloadKind::kService;
  // Slow flush: a reply produced between flushes cannot be stable yet, so
  // it must sit gated until the next flush covers its interval.
  config.process.flush_interval = millis(250);
  config.process.checkpoint_interval = millis(500);
  config.time_cap = millis(4000);

  TcpCluster cluster(config);

  // Pick a key owned by a process on node 0 so no re-routing is involved.
  std::uint64_t key = 0;
  while (cluster.topology().node_of(service::key_owner(key, config.n)) != 0) {
    ++key;
  }

  std::thread runner;
  TcpClusterResult result;
  runner = std::thread([&] { result = cluster.run(); });

  const std::uint16_t port = cluster.node(0).service_port();
  ASSERT_NE(port, 0);
  const int fd = dial_loopback(port);
  ASSERT_GE(fd, 0);
  Bytes buf;
  std::size_t pos = 0;

  Request put;
  put.op = Op::kPut;
  put.client_id = 0xC11E47;
  put.seq = 1;
  put.key = key;
  put.value = 42;
  ASSERT_TRUE(send_request(fd, put));
  auto reply = read_response(fd, buf, pos);
  ASSERT_TRUE(reply.has_value()) << "no reply within the socket timeout";
  EXPECT_EQ(reply->status, Status::kOk);
  EXPECT_EQ(reply->seq, 1u);
  EXPECT_EQ(reply->kver, 1u);
  EXPECT_EQ(reply->value, 42u);

  // Retry the same identity: the dedup table re-serves an identical reply
  // without a second execution (kver stays 1).
  ASSERT_TRUE(send_request(fd, put));
  auto dup = read_response(fd, buf, pos);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->encode(), reply->encode());

  Request get;
  get.op = Op::kGet;
  get.client_id = put.client_id;
  get.seq = 2;
  get.key = key;
  ASSERT_TRUE(send_request(fd, get));
  auto got = read_response(fd, buf, pos);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, Status::kOk);
  EXPECT_EQ(got->value, 42u);
  EXPECT_EQ(got->kver, 1u);

  ::close(fd);
  runner.join();

  // Serving clusters end 0 at the cap without quiescing.
  EXPECT_EQ(result.exit_code, 0);

  std::uint64_t requests = 0, released = 0, gated = 0, dropped = 0;
  for (const TcpNodeResult& node : result.per_node) {
    EXPECT_TRUE(node.service.enabled);
    requests += node.service.requests;
    released += node.service.replies_released;
    gated += node.service.replies_gated;
    dropped += node.service.replies_dropped;
  }
  EXPECT_EQ(requests, 3u);
  EXPECT_EQ(released, 3u);
  EXPECT_EQ(dropped, 0u);
  // The output-commit point did real work: with a 250ms flush cadence at
  // least one reply had to wait for stability before release.
  EXPECT_GE(gated, 1u);
}

}  // namespace
}  // namespace optrec
