// ServiceApp unit tests: exactly-once dedup, kver monotonicity, transfer
// conservation across processes, and the snapshot/restore determinism the
// replay-based recovery contract requires.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/service/service_app.h"
#include "src/util/bytes.h"

namespace optrec::service {
namespace {

/// Records sends/outputs instead of transmitting (tests/app idiom).
class RecordingContext : public AppContext {
 public:
  RecordingContext(ProcessId self, std::size_t n) : self_(self), n_(n) {}
  ProcessId self() const override { return self_; }
  std::size_t process_count() const override { return n_; }
  void send(ProcessId dst, const Bytes& payload) override {
    sends.push_back({dst, payload});
  }
  void output(const std::string& data) override { outputs.push_back(data); }

  std::vector<std::pair<ProcessId, Bytes>> sends;
  std::vector<std::string> outputs;

 private:
  ProcessId self_;
  std::size_t n_;
};

Response last_reply(const RecordingContext& ctx) {
  EXPECT_FALSE(ctx.outputs.empty());
  const std::string& raw = ctx.outputs.back();
  return Response::decode(Bytes(raw.begin(), raw.end()));
}

void deliver(ServiceApp& app, RecordingContext& ctx, const Request& req) {
  app.on_message(ctx, /*src=*/ctx.process_count(),
                 encode_request_payload(req));
}

Request make(Op op, std::uint64_t client, std::uint64_t seq,
             std::uint64_t key, std::uint64_t value = 0,
             std::uint64_t to_account = 0) {
  Request req;
  req.op = op;
  req.client_id = client;
  req.seq = seq;
  req.key = key;
  req.value = value;
  req.to_account = to_account;
  return req;
}

TEST(ServiceApp, PutGetKverMonotone) {
  // n = 1: pid 0 owns every key.
  ServiceApp app(0, 1);
  RecordingContext ctx(0, 1);
  app.on_start(ctx);

  deliver(app, ctx, make(Op::kPut, 1, 1, 5, 70));
  Response r = last_reply(ctx);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.kver, 1u);
  EXPECT_EQ(r.value, 70u);

  deliver(app, ctx, make(Op::kPut, 1, 2, 5, 71));
  r = last_reply(ctx);
  EXPECT_EQ(r.kver, 2u);

  deliver(app, ctx, make(Op::kGet, 1, 3, 5));
  r = last_reply(ctx);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.value, 71u);
  EXPECT_EQ(r.kver, 2u);

  deliver(app, ctx, make(Op::kGet, 1, 4, 999));
  EXPECT_EQ(last_reply(ctx).status, Status::kNotFound);
}

TEST(ServiceApp, RetryReServesCachedReplyWithoutReExecuting) {
  ServiceApp app(0, 1);
  RecordingContext ctx(0, 1);
  app.on_start(ctx);

  const Request put = make(Op::kPut, 7, 1, 3, 10);
  deliver(app, ctx, put);
  const std::string first = ctx.outputs.back();
  EXPECT_EQ(app.requests_executed(), 1u);

  // Retry with the same identity: byte-identical reply, no re-execution
  // (a re-executed PUT would bump kver to 2).
  deliver(app, ctx, put);
  EXPECT_EQ(ctx.outputs.size(), 2u);
  EXPECT_EQ(ctx.outputs.back(), first);
  EXPECT_EQ(app.requests_executed(), 1u);
  EXPECT_EQ(app.requests_deduped(), 1u);
  EXPECT_EQ(Response::decode(Bytes(first.begin(), first.end())).kver, 1u);

  // A stale straggler (seq below the last executed) is dropped silently.
  deliver(app, ctx, make(Op::kPut, 7, 2, 3, 11));
  const std::size_t outputs_before = ctx.outputs.size();
  deliver(app, ctx, make(Op::kPut, 7, 1, 3, 12));
  EXPECT_EQ(ctx.outputs.size(), outputs_before);
  EXPECT_EQ(app.requests_executed(), 2u);
}

TEST(ServiceApp, TransferMovesValueAndConservesAcrossProcesses) {
  const std::size_t n = 2;
  ServiceAppConfig config;
  config.accounts = 16;
  config.initial_balance = 100;
  ServiceApp p0(0, n, config), p1(1, n, config);
  RecordingContext c0(0, n), c1(1, n);
  p0.on_start(c0);
  p1.on_start(c1);

  const std::uint64_t total = config.accounts * config.initial_balance;
  EXPECT_EQ(p0.balance_sum() + p1.balance_sum(), total);

  // Find a cross-process pair: src owned by p0, dst owned by p1.
  std::uint64_t src = config.accounts, dst = config.accounts;
  for (std::uint64_t a = 0; a < config.accounts; ++a) {
    if (key_owner(a, n) == 0 && src == config.accounts) src = a;
    if (key_owner(a, n) == 1 && dst == config.accounts) dst = a;
  }
  ASSERT_LT(src, config.accounts);
  ASSERT_LT(dst, config.accounts);

  deliver(p0, c0, make(Op::kTransfer, 9, 1, src, 25, dst));
  EXPECT_EQ(last_reply(c0).status, Status::kOk);
  ASSERT_EQ(c0.sends.size(), 1u);
  EXPECT_EQ(c0.sends[0].first, 1u);

  // Mid-flight the fleet total is short by the credit; delivering the
  // credit message restores conservation.
  EXPECT_EQ(p0.balance_sum() + p1.balance_sum(), total - 25);
  p1.on_message(c1, 0, c0.sends[0].second);
  EXPECT_EQ(p0.balance_sum() + p1.balance_sum(), total);

  // Overdraft: rejected, no credit sent, balances untouched.
  deliver(p0, c0, make(Op::kTransfer, 9, 2, src, 1000000, dst));
  const Response r = last_reply(c0);
  EXPECT_EQ(r.status, Status::kInsufficient);
  EXPECT_EQ(c0.sends.size(), 1u);
  EXPECT_EQ(p0.balance_sum() + p1.balance_sum(), total);
}

TEST(ServiceApp, SnapshotRestoreRoundTripsExactly) {
  ServiceApp app(0, 1);
  RecordingContext ctx(0, 1);
  app.on_start(ctx);
  deliver(app, ctx, make(Op::kPut, 1, 1, 2, 20));
  deliver(app, ctx, make(Op::kPut, 2, 1, 4, 40));
  deliver(app, ctx, make(Op::kTransfer, 1, 2, 0, 5, 1));
  deliver(app, ctx, make(Op::kPut, 1, 3, 2, 21));

  const Bytes snap = app.snapshot();
  ServiceApp restored(0, 1);
  restored.restore(snap);
  EXPECT_EQ(fnv1a(restored.snapshot()), fnv1a(snap));
  EXPECT_EQ(restored.balance_sum(), app.balance_sum());
  EXPECT_EQ(restored.keys_held(), app.keys_held());
  EXPECT_EQ(restored.requests_executed(), app.requests_executed());

  // Identical deliveries from the same state stay byte-deterministic —
  // the replay contract.
  RecordingContext actx(0, 1);
  deliver(app, actx, make(Op::kGet, 3, 1, 2));
  RecordingContext rctx2(0, 1);
  deliver(restored, rctx2, make(Op::kGet, 3, 1, 2));
  EXPECT_EQ(actx.outputs, rctx2.outputs);
  EXPECT_EQ(fnv1a(app.snapshot()), fnv1a(restored.snapshot()));

  // The dedup table survives the round trip: a retry against the restored
  // instance re-serves the cached reply instead of re-executing — this is
  // what keeps retries exactly-once across a crash + replay.
  RecordingContext rctx(0, 1);
  deliver(restored, rctx, make(Op::kPut, 1, 3, 2, 21));
  EXPECT_EQ(restored.requests_deduped(), app.requests_deduped() + 1);
  EXPECT_EQ(last_reply(rctx).kver, 2u);
}

}  // namespace
}  // namespace optrec::service
