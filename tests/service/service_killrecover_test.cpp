// The acceptance scenario as a test: a real multi-process serving fleet
// (optrec_node --spawn --serve), SIGKILL of a node mid-request-stream, warm
// respawn from durable state — driven by the real optrec_loadgen binary,
// whose client-side oracle must stay clean: no reply from a rolled-back
// interval (monotonic kver), every retried request applied exactly once,
// and the bank total conserved after recovery.
//
// Binary paths are injected via OPTREC_NODE_BIN / OPTREC_LOADGEN_BIN
// compile definitions (tests/CMakeLists.txt), mirroring the durable
// recovery test.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/util/json.h"

namespace optrec {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "optrec-service-XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

#if defined(OPTREC_NODE_BIN) && defined(OPTREC_LOADGEN_BIN)
TEST(ServiceKillRecover, OracleStaysCleanAcrossSigkillWarmRespawn) {
  TempDir tmp;
  const std::string data_dir = (tmp.path / "data").string();
  const std::string topo = (tmp.path / "topo.json").string();
  const std::string bench = (tmp.path / "BENCH_service.json").string();
  const std::string metrics = (tmp.path / "metrics.json").string();
  const std::string node_log = (tmp.path / "node.log").string();
  const std::string lg_log = (tmp.path / "loadgen.log").string();

  // One shell pipeline: background the serving fleet, wait for its
  // topology file, run the load driver against it (retrying through the
  // kill window), then wait for the fleet's own exit code. The fleet
  // serves until its time cap (serving clusters never quiesce); the cap
  // is generous because sanitizer builds recover ~10x slower.
  std::ostringstream cmd;
  cmd << "sh -c '"
      << OPTREC_NODE_BIN
      << " --spawn --processes=8 --tcp-nodes=4 --seed=5 --workload=service"
      << " --serve --retransmit --flush-ms=10 --ckpt-ms=50"
      << " --kill=1:1000:4000 --time-cap-ms=30000"
      << " --data-dir=" << data_dir << " --write-topology=" << topo
      << " --metrics-json=" << metrics << " > " << node_log << " 2>&1 &"
      << " NODE_PID=$!;"
      << " i=0; while [ ! -s " << topo << " ] && [ $i -lt 100 ];"
      << " do sleep 0.1; i=$((i+1)); done;"
      << OPTREC_LOADGEN_BIN << " --topology=" << topo
      << " --clients=4 --duration-ms=3000 --kill-at-ms=1000"
      << " --timeout-ms=500 --grace-ms=20000 --audit-timeout-ms=20000"
      << " --seed=5 --json=" << bench << " > " << lg_log << " 2>&1;"
      << " LG=$?;"
      << " wait $NODE_PID; NODE=$?;"
      << " echo loadgen=$LG node=$NODE;"
      << " [ $LG -eq 0 ] && [ $NODE -eq 0 ]'";
  const int status = std::system(cmd.str().c_str());
  ASSERT_TRUE(WIFEXITED(status));
  if (WEXITSTATUS(status) != 0) {
    std::ostringstream text;
    for (const std::string& f : {node_log, lg_log}) {
      std::ifstream in(f);
      text << "---- " << f << ":\n" << in.rdbuf() << "\n";
    }
    FAIL() << "fleet or loadgen failed\n" << text.str();
  }

  // The loadgen's exit code already encodes "oracle clean" (3 = violation);
  // re-assert the specifics from its JSON report.
  std::ifstream in(bench);
  ASSERT_TRUE(in.good()) << "loadgen wrote no BENCH_service.json";
  std::ostringstream text;
  text << in.rdbuf();
  const JsonValue root = JsonValue::parse(text.str());

  const JsonValue* oracle = root.find("oracle");
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->u64_or("violations", 99), 0u)
      << "client observed orphaned/non-monotonic/duplicate state";

  const JsonValue* audit = root.find("audit");
  ASSERT_NE(audit, nullptr);
  EXPECT_TRUE(audit->find("conserved") != nullptr &&
              audit->find("conserved")->as_bool())
      << "bank total not conserved after warm recovery: "
      << audit->u64_or("observed", 0) << " != "
      << audit->u64_or("expected", 0);

  const JsonValue* requests = root.find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GT(requests->u64_or("succeeded", 0), 0u);
  EXPECT_EQ(requests->u64_or("abandoned", 1), 0u)
      << "a client never got its reply back after the recovery window";

  const JsonValue* latency = root.find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->u64_or("request_count", 0), 0u);

  // The killed node came back warm from its durable store, not as a
  // version-0 cold loss.
  std::ifstream min(metrics + ".node1");
  ASSERT_TRUE(min.good()) << "respawned node wrote no metrics JSON";
  std::ostringstream mtext;
  mtext << min.rdbuf();
  const JsonValue mroot = JsonValue::parse(mtext.str());
  const JsonValue* durable = mroot.find("durable");
  ASSERT_NE(durable, nullptr);
  EXPECT_GE(durable->u64_or("warm_recovered", 0), 1u)
      << "respawn fell back to a cold crash-announce";
  const JsonValue* service = mroot.find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_GT(service->u64_or("requests", 0), 0u)
      << "respawned node served no client requests";
}
#endif  // OPTREC_NODE_BIN && OPTREC_LOADGEN_BIN

}  // namespace
}  // namespace optrec
