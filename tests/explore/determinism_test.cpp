// Determinism regression (exploration engine prerequisite): a Scenario is a
// pure function of its config. Running the identical ScenarioConfig twice —
// same seed, same failure plan, drops on, tracing on — must produce
// bit-identical metrics JSON and an identical trace digest, for every
// protocol. The explorer's repro artifacts and the shrinker's fixpoint both
// assume exactly this.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/trace/trace_event.h"

namespace optrec {
namespace {

ScenarioConfig stress_config(ProtocolKind protocol) {
  ScenarioConfig config;
  config.n = 4;
  config.seed = 20260806;
  config.protocol = protocol;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = 5;
  config.workload.depth = 30;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(15);
  config.process.checkpoint_interval = millis(80);
  config.process.retransmit_on_failure = true;
  config.network.drop_prob = 0.10;
  config.failures.crashes.push_back({millis(40), 1});
  config.failures.crashes.push_back({millis(95), 3});
  config.enable_trace = true;
  return config;
}

std::string protocol_param_name(
    const ::testing::TestParamInfo<ProtocolKind>& info) {
  std::string name = protocol_name(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class DeterminismSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DeterminismSweep, IdenticalMetricsAndTraceDigestAcrossRuns) {
  const ScenarioConfig config = stress_config(GetParam());

  const ExperimentResult first = run_experiment(config);
  const ExperimentResult second = run_experiment(config);

  EXPECT_EQ(first.quiesced, second.quiesced);
  EXPECT_EQ(first.end_time, second.end_time);
  EXPECT_EQ(result_json(config, first), result_json(config, second));

  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace.size(), second.trace.size());
  EXPECT_EQ(trace_digest(first.trace), trace_digest(second.trace));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeterminismSweep,
                         ::testing::Values(ProtocolKind::kDamaniGarg,
                                           ProtocolKind::kPessimistic,
                                           ProtocolKind::kCascading,
                                           ProtocolKind::kPetersonKearns),
                         protocol_param_name);

// The digest must actually discriminate: a different seed is a different
// causal story, and a single flipped field changes the digest.
TEST(TraceDigest, DiscriminatesRuns) {
  ScenarioConfig config = stress_config(ProtocolKind::kDamaniGarg);
  const ExperimentResult base = run_experiment(config);

  config.seed = config.seed + 1;
  const ExperimentResult other = run_experiment(config);
  EXPECT_NE(trace_digest(base.trace), trace_digest(other.trace));

  std::vector<TraceEvent> mutated = base.trace;
  ASSERT_FALSE(mutated.empty());
  mutated.back().count ^= 1;
  EXPECT_NE(trace_digest(base.trace), trace_digest(mutated));
}

}  // namespace
}  // namespace optrec
