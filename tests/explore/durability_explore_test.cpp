// Durability fuzzer end-to-end: the fault-injection sweep must pass the
// real implementation clean, catch both WAL ablations (negative controls),
// shrink violations to replayable minimal cases, and round-trip repro
// artifacts through JSON.
#include <gtest/gtest.h>

#include <string>

#include "src/explore/durability_case.h"

namespace optrec {
namespace {

DurabilitySweepOptions base_opts() {
  DurabilitySweepOptions opts;
  opts.runs = 150;
  opts.seed = 5;
  opts.ops = 40;
  opts.shrink_budget = 120;
  return opts;
}

TEST(DurabilitySweep, RealImplementationSweepsClean) {
  const DurabilitySweepReport report = run_durability_sweep(base_opts());
  EXPECT_EQ(report.runs_completed, 150u);
  EXPECT_TRUE(report.ok()) << report.violation_runs << " violation runs, "
                           << report.repros.size() << " repros";
  EXPECT_GT(report.coverage_buckets, 10u)
      << "sweep did not explore distinct crash outcomes";
}

TEST(DurabilitySweep, SkipCrcAblationIsCaughtAndShrinks) {
  DurabilitySweepOptions opts = base_opts();
  opts.runs = 300;
  opts.mutation = "skip-crc";
  opts.corrupt_prob = 0.5;  // the CRC hole only shows under corruption
  const DurabilitySweepReport report = run_durability_sweep(opts);
  ASSERT_GT(report.violation_runs, 0u);
  ASSERT_FALSE(report.repros.empty());

  // Every shrunk minimal case still reproduces its violation category.
  for (const DurabilityRepro& repro : report.repros) {
    const Expectation want{repro.violation.kind, repro.violation.category};
    const DurabilityOutcome rerun = run_durability_case(repro.minimal);
    EXPECT_TRUE(want.matches(rerun.violations))
        << "minimal case lost [" << repro.violation.category << "]";
  }
}

TEST(DurabilitySweep, AsyncTokensAblationIsCaught) {
  DurabilitySweepOptions opts = base_opts();
  opts.runs = 300;
  opts.mutation = "async-tokens";
  const DurabilitySweepReport report = run_durability_sweep(opts);
  ASSERT_GT(report.violation_runs, 0u)
      << "buffered tokens must lose durable state under kill -9";
  ASSERT_FALSE(report.repros.empty());
  const DurabilityOutcome rerun = run_durability_case(report.repros[0].minimal);
  const Expectation want{report.repros[0].violation.kind,
                         report.repros[0].violation.category};
  EXPECT_TRUE(want.matches(rerun.violations));
}

TEST(DurabilityCase, OutcomeIsDeterministic) {
  DurabilityCase c;
  c.seed = 987654321;
  c.ops = 40;
  c.crash_at_op = 9;
  c.garble_tail = 1.0;
  const DurabilityOutcome a = run_durability_case(c);
  const DurabilityOutcome b = run_durability_case(c);
  EXPECT_EQ(a.signatures, b.signatures);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.fs_ops, b.fs_ops);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].message, b.violations[i].message);
  }
}

TEST(DurabilityCase, PowerCutRecoversTheFinalDurableState) {
  // No crash mid-schedule: everything synced must come back, no violations.
  DurabilityCase c;
  c.seed = 31337;
  c.ops = 60;
  const DurabilityOutcome out = run_durability_case(c);
  EXPECT_FALSE(out.crashed);
  EXPECT_TRUE(out.ok()) << (out.violations.empty()
                                ? std::string()
                                : out.violations.front().message);
  EXPECT_TRUE(out.warm) << "schedules start with a checkpoint, so a "
                           "power-cut image always has a manifest";
}

TEST(DurabilityRepro, JsonRoundTrip) {
  DurabilityCase c;
  c.seed = 0xdeadbeefcafe;
  c.ops = 23;
  c.crash_at_op = 17;
  c.garble_tail = 1.0;
  c.corrupt_durable = true;
  c.mutation = "async-tokens";
  const Expectation expect{"durability", "durable-loss"};

  const std::string json = durability_repro_to_json(c, expect);
  EXPECT_NE(json.find(kDurabilityReproSchema), std::string::npos);

  DurabilityCase back;
  Expectation expect_back;
  parse_durability_repro_json(json, &back, &expect_back);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.ops, c.ops);
  EXPECT_EQ(back.crash_at_op, c.crash_at_op);
  EXPECT_EQ(back.garble_tail, c.garble_tail);
  EXPECT_EQ(back.corrupt_durable, c.corrupt_durable);
  EXPECT_EQ(back.mutation, c.mutation);
  EXPECT_EQ(expect_back.kind, expect.kind);
  EXPECT_EQ(expect_back.category, expect.category);

  // Power-cut cases omit crash_at_op and parse back as never-crash.
  DurabilityCase powercut;
  powercut.seed = 42;
  const std::string pj = durability_repro_to_json(powercut, Expectation{});
  EXPECT_EQ(pj.find("crash_at_op"), std::string::npos);
  DurabilityCase pback;
  Expectation pexpect;
  parse_durability_repro_json(pj, &pback, &pexpect);
  EXPECT_GE(pback.crash_at_op, 1ull << 40);
}

TEST(DurabilityRepro, RejectsForeignArtifacts) {
  DurabilityCase c;
  Expectation e;
  EXPECT_THROW(parse_durability_repro_json("{\"schema\":\"bogus\"}", &c, &e),
               std::exception);
  EXPECT_THROW(parse_durability_repro_json("not json at all", &c, &e),
               std::exception);
}

}  // namespace
}  // namespace optrec
