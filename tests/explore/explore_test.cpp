// Exploration engine unit + integration tests: scenario/schedule/repro JSON
// round-trips, coverage signature semantics, the schedule mutator's
// decision-stream determinism, single-case execution, the shrinker, and
// small end-to-end sweeps (a healthy DG sweep stays clean; a fault-injected
// sweep finds, shrinks, and replays a Lemma-4 violation).
#include <gtest/gtest.h>

#include <set>

#include "src/explore/case_mutator.h"
#include "src/explore/coverage.h"
#include "src/explore/explore_case.h"
#include "src/explore/explorer.h"
#include "src/explore/schedule_mutator.h"
#include "src/explore/shrinker.h"
#include "src/harness/scenario_json.h"

namespace optrec {
namespace {

ScenarioConfig nontrivial_config() {
  ScenarioConfig config;
  config.n = 5;
  config.seed = 987654321;
  config.protocol = ProtocolKind::kPetersonKearns;
  config.workload.kind = WorkloadKind::kPingPong;
  config.workload.intensity = 7;
  config.workload.depth = 33;
  config.workload.payload_pad = 12;
  config.workload.all_seed = false;
  config.process.checkpoint_interval = millis(77);
  config.process.flush_interval = millis(9);
  config.process.restart_delay = millis(3);
  config.process.retransmit_on_failure = true;
  config.process.enable_stability_tracking = true;
  config.process.stability_gossip_interval = millis(111);
  config.process.enable_gc = true;
  config.network.min_delay = 42;
  config.network.max_delay = 4242;
  config.network.fifo = true;
  config.network.drop_prob = 0.125;
  config.network.retry_interval = millis(7);
  config.failures.crashes.push_back({millis(31), 2});
  config.failures.crashes.push_back({millis(31), 4});
  config.failures.partitions.push_back(
      {millis(50), millis(120), {{0, 1}, {2, 3, 4}}});
  config.time_cap = seconds(120);
  config.settle_slice = millis(100);
  return config;
}

TEST(ScenarioJson, RoundTripIsExact) {
  const ScenarioConfig config = nontrivial_config();
  const std::string text = scenario_to_json(config);
  const ScenarioConfig back = parse_scenario_json(text);
  // Serialize-parse-serialize fixpoint implies field-exact round-trip for
  // everything the JSON form captures.
  EXPECT_EQ(text, scenario_to_json(back));
  EXPECT_EQ(back.n, config.n);
  EXPECT_EQ(back.seed, config.seed);
  EXPECT_EQ(back.protocol, config.protocol);
  EXPECT_EQ(back.workload.kind, config.workload.kind);
  ASSERT_EQ(back.failures.crashes.size(), 2u);
  EXPECT_EQ(back.failures.crashes[1].pid, 4u);
  ASSERT_EQ(back.failures.partitions.size(), 1u);
  EXPECT_EQ(back.failures.partitions[0].groups,
            config.failures.partitions[0].groups);
  EXPECT_EQ(back.network.fifo, true);
  EXPECT_EQ(back.process.retransmit_on_failure, true);
}

TEST(ScenarioJson, MissingMembersKeepDefaults) {
  const ScenarioConfig defaults;
  const ScenarioConfig parsed = parse_scenario_json("{\"n\": 7}");
  EXPECT_EQ(parsed.n, 7u);
  EXPECT_EQ(parsed.seed, defaults.seed);
  EXPECT_EQ(parsed.protocol, defaults.protocol);
  EXPECT_EQ(parsed.network.max_delay, defaults.network.max_delay);
  EXPECT_TRUE(parsed.failures.crashes.empty());
}

TEST(ScenarioJson, ProtocolNamesRoundTripAndAliasesParse) {
  for (ProtocolKind kind :
       {ProtocolKind::kDamaniGarg, ProtocolKind::kPessimistic,
        ProtocolKind::kCoordinated, ProtocolKind::kSenderBased,
        ProtocolKind::kCascading, ProtocolKind::kPetersonKearns,
        ProtocolKind::kPlain}) {
    EXPECT_EQ(protocol_from_name(protocol_name(kind)), kind);
  }
  EXPECT_EQ(protocol_from_name("dg"), ProtocolKind::kDamaniGarg);
  EXPECT_EQ(protocol_from_name("pk"), ProtocolKind::kPetersonKearns);
  EXPECT_THROW(protocol_from_name("quantum"), std::invalid_argument);
}

TEST(ReproJson, RoundTrip) {
  ExploreCase c;
  c.scenario = nontrivial_config();
  c.schedule.seed = 5551212;
  c.schedule.reorder_prob = 0.25;
  c.schedule.max_extra_delay = millis(60);
  c.schedule.drop_prob = 0.3;
  c.schedule.dup_prob = 0.05;
  Expectation expect{"audit", "rollback budget exceeded"};

  const std::string text = repro_to_json(c, expect);
  ExploreCase back;
  Expectation back_expect;
  parse_repro_json(text, &back, &back_expect);

  EXPECT_EQ(back.schedule, c.schedule);
  EXPECT_EQ(scenario_to_json(back.scenario), scenario_to_json(c.scenario));
  EXPECT_EQ(back_expect.kind, expect.kind);
  EXPECT_EQ(back_expect.category, expect.category);
}

TEST(ReproJson, RejectsWrongSchema) {
  ExploreCase c;
  Expectation e;
  EXPECT_THROW(parse_repro_json("{\"schema\":\"bogus\"}", &c, &e),
               std::runtime_error);
}

TEST(ViolationCategory, StripsNumbersAndDetail) {
  EXPECT_EQ(violation_category(
                "rollback budget exceeded: P0 rolled back 2 times"),
            "rollback budget exceeded");
  EXPECT_EQ(violation_category(
                "obsolete delivery at #170: P3 delivered msg 88"),
            "obsolete delivery at");
  // Same category for the same bug against different pids/counts.
  EXPECT_EQ(violation_category("frontier of P0 (state 29) is an orphan"),
            violation_category("frontier of P3 (state 141) is an orphan"));
}

TEST(ScheduleMutator, DeterministicDecisionStreams) {
  ScheduleParams params;
  params.seed = 77;
  params.reorder_prob = 0.5;
  params.max_extra_delay = millis(10);
  params.drop_prob = 0.4;
  params.dup_prob = 0.2;

  ScheduleMutator a(params);
  ScheduleMutator b(params);
  for (int i = 0; i < 200; ++i) {
    const SimTime da = a.delivery_delay(0, 1, false, 100, 5000);
    const SimTime db = b.delivery_delay(0, 1, false, 100, 5000);
    EXPECT_EQ(da, db);
    EXPECT_GE(da, 100u);
    EXPECT_LE(da, 5000u + params.max_extra_delay);
    EXPECT_EQ(a.drop_app_message(0, 1), b.drop_app_message(0, 1));
    EXPECT_EQ(a.duplicate_app_message(0, 1), b.duplicate_app_message(0, 1));
  }
}

TEST(ScheduleMutator, ZeroPressureIsPureUniformDelay) {
  ScheduleParams params;  // all pressure knobs default to 0
  params.seed = 9;
  ScheduleMutator m(params);
  for (int i = 0; i < 100; ++i) {
    const SimTime d = m.delivery_delay(1, 2, false, 50, 200);
    EXPECT_GE(d, 50u);
    EXPECT_LE(d, 200u);
    EXPECT_FALSE(m.drop_app_message(1, 2));
    EXPECT_FALSE(m.duplicate_app_message(1, 2));
  }
}

TEST(Coverage, ContextFlagsProduceDistinctKeys) {
  FailurePlan plan;
  plan.crashes.push_back({1000, 0});

  TraceEvent deliver;
  deliver.type = TraceEventType::kDeliver;
  deliver.pid = 1;

  // Same event type before vs after a crash: the down-set flag differs, so
  // the signature keys must differ.
  TraceEvent crash;
  crash.type = TraceEventType::kCrash;
  crash.pid = 0;
  crash.at = 1000;

  TraceEvent late = deliver;
  late.at = 2000;

  const auto calm = coverage_signatures({deliver}, FailurePlan::none(), 2);
  const auto stressed = coverage_signatures({crash, late}, plan, 2);
  std::set<std::uint64_t> calm_keys(calm.begin(), calm.end());
  bool found_new = false;
  for (std::uint64_t k : stressed) {
    if (!calm_keys.count(k)) found_new = true;
  }
  EXPECT_TRUE(found_new);
}

TEST(Coverage, MapCountsOnlyNovelKeys) {
  CoverageMap map;
  EXPECT_EQ(map.add_all({1, 2, 3}), 3u);
  EXPECT_EQ(map.add_all({2, 3, 4}), 1u);
  EXPECT_EQ(map.add_all({1, 2, 3, 4}), 0u);
  EXPECT_EQ(map.size(), 4u);
  EXPECT_TRUE(map.contains(4));
  EXPECT_FALSE(map.contains(5));
}

ScenarioConfig explorer_base() {
  ScenarioConfig base;
  base.n = 4;
  base.workload.kind = WorkloadKind::kCounter;
  base.workload.intensity = 4;
  base.workload.depth = 24;
  base.workload.all_seed = true;
  base.process.flush_interval = millis(20);
  base.process.checkpoint_interval = millis(100);
  return base;
}

TEST(CaseMutator, GeneratedCasesStayInBounds) {
  CaseGenOptions options;
  options.base = explorer_base();
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    const ExploreCase c = random_case(options, rng);
    EXPECT_EQ(c.scenario.schedule_hook, nullptr);
    EXPECT_LE(c.scenario.failures.crashes.size(), options.max_crashes);
    EXPECT_LE(c.scenario.failures.partitions.size(), options.max_partitions);
    EXPECT_LE(c.schedule.drop_prob, options.max_drop_prob);
    EXPECT_LE(c.schedule.dup_prob, options.max_dup_prob);
    EXPECT_LE(c.schedule.max_extra_delay, options.max_extra_delay);
    for (const CrashEvent& crash : c.scenario.failures.crashes) {
      EXPECT_LT(crash.pid, c.scenario.n);
      EXPECT_LE(crash.at, options.fault_window);
    }
    for (const PartitionEvent& p : c.scenario.failures.partitions) {
      EXPECT_GT(p.heal_at, p.at);
      EXPECT_GE(p.groups.size(), 2u);
    }
    const ExploreCase m = mutate_case(c, options, rng);
    EXPECT_LE(m.scenario.failures.crashes.size(), options.max_crashes);
    EXPECT_LE(m.schedule.drop_prob, options.max_drop_prob);
  }
}

TEST(RunExploreCase, DeterministicAndCleanForDg) {
  ExploreCase c;
  c.scenario = explorer_base();
  c.scenario.seed = 31337;
  c.scenario.failures.crashes.push_back({millis(30), 2});
  c.schedule.seed = 99;
  c.schedule.reorder_prob = 0.3;
  c.schedule.max_extra_delay = millis(40);
  c.schedule.drop_prob = 0.2;

  const RunOutcome a = run_explore_case(c);
  const RunOutcome b = run_explore_case(c);
  EXPECT_TRUE(a.quiesced);
  EXPECT_TRUE(a.ok()) << a.first()->message;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_FALSE(a.signatures.empty());
  EXPECT_EQ(a.signatures, b.signatures);
}

// A pinned case that violates Lemma 4 when the obsolete filter is ablated
// (fault injection: "testing the tester"). Shrinking it must preserve the
// violation category, and the minimal case must replay.
ExploreCase lemma4_ablated_case() {
  ExploreCase c;
  c.scenario = explorer_base();
  c.scenario.seed = 16872994931356387390ull;
  c.scenario.workload.intensity = 6;
  c.scenario.workload.depth = 48;
  c.scenario.process.ablation_skip_obsolete_filter = true;
  c.scenario.failures.crashes.push_back({10634, 3});
  c.schedule.seed = 10219647317266604413ull;
  return c;
}

TEST(RunExploreCase, AblatedLemma4FilterIsCaught) {
  const RunOutcome outcome = run_explore_case(lemma4_ablated_case());
  ASSERT_FALSE(outcome.ok());
  Expectation expect{"audit", "obsolete delivery at"};
  EXPECT_TRUE(expect.matches(outcome.violations));
}

TEST(Shrinker, MinimizesAndStaysFailing) {
  const ExploreCase failing = lemma4_ablated_case();
  const Expectation expect{"audit", "obsolete delivery at"};

  ShrinkStats stats;
  const ExploreCase minimal = shrink_case(failing, expect, 200, &stats);
  EXPECT_GT(stats.attempts, 0u);

  // The minimal case still reproduces the expected category...
  const RunOutcome outcome = run_explore_case(minimal);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(expect.matches(outcome.violations));
  // ...and is no bigger than the original along the shrink dimensions.
  EXPECT_LE(minimal.scenario.failures.crashes.size(),
            failing.scenario.failures.crashes.size());
  EXPECT_LE(minimal.scenario.workload.intensity,
            failing.scenario.workload.intensity);
  EXPECT_LE(minimal.scenario.n, failing.scenario.n);
}

TEST(Sweep, HealthyDgSweepIsClean) {
  SweepOptions options;
  options.gen.base = explorer_base();
  options.runs = 40;
  options.seed = 11;
  options.jobs = 2;
  const SweepReport report = run_sweep(options);
  EXPECT_EQ(report.runs_completed, 40u);
  EXPECT_TRUE(report.ok()) << (report.repros.empty()
                                   ? std::string("violations without repros")
                                   : report.repros[0].violation.message);
  EXPECT_GT(report.coverage_buckets, 0u);
  EXPECT_GT(report.corpus_size, 0u);
  EXPECT_TRUE(report.repros.empty());
}

TEST(Sweep, FaultInjectedSweepFindsShrinksAndReplays) {
  SweepOptions options;
  options.gen.base = explorer_base();
  options.gen.base.process.ablation_skip_obsolete_filter = true;
  options.runs = 60;
  options.seed = 3;
  options.jobs = 2;
  options.shrink_budget = 120;
  options.max_repros = 1;

  const SweepReport report = run_sweep(options);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.repros.empty());

  const ReproArtifact& artifact = report.repros[0];
  // The artifact is self-contained: replaying the minimal case through the
  // same entry point reproduces the recorded violation category.
  const RunOutcome replay = run_explore_case(artifact.minimal);
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(artifact.expect.matches(replay.violations));

  // And it survives the JSON round-trip used by `optrec_explore --repro`.
  const std::string text = repro_to_json(artifact.minimal, artifact.expect);
  ExploreCase parsed;
  Expectation parsed_expect;
  parse_repro_json(text, &parsed, &parsed_expect);
  const RunOutcome from_json = run_explore_case(parsed);
  EXPECT_TRUE(parsed_expect.matches(from_json.violations));
}

TEST(Sweep, SingleThreadedSweepIsDeterministic) {
  SweepOptions options;
  options.gen.base = explorer_base();
  options.runs = 25;
  options.seed = 5;
  options.jobs = 1;
  const SweepReport a = run_sweep(options);
  const SweepReport b = run_sweep(options);
  EXPECT_EQ(a.runs_completed, b.runs_completed);
  EXPECT_EQ(a.violation_runs, b.violation_runs);
  EXPECT_EQ(a.coverage_buckets, b.coverage_buckets);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
}

TEST(Sweep, BenchJsonHasTheContractFields) {
  SweepOptions options;
  options.gen.base = explorer_base();
  options.runs = 5;
  options.jobs = 1;
  const SweepReport report = run_sweep(options);
  const std::string json = report.bench_json("damani-garg");
  EXPECT_NE(json.find("\"bench\":\"explore\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":5"), std::string::npos);
  EXPECT_NE(json.find("\"runs_per_second\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage_buckets\""), std::string::npos);
}

}  // namespace
}  // namespace optrec
