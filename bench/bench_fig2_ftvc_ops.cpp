// E2 — regenerates Figure 2's mechanism as throughput numbers: the cost of
// maintaining the fault-tolerant vector clock (merge on delivery, tick on
// send, serialize for piggyback, comparison for Theorem-1 queries) as the
// system size n grows. This is the failure-free cost of the paper's core
// data structure.
#include "bench_util.h"
#include "src/clocks/ftvc.h"
#include "src/clocks/vector_clock.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

Ftvc busy_clock(ProcessId owner, std::size_t n, std::uint64_t salt) {
  Ftvc c(owner, n);
  // Exercise several versions/timestamps so comparisons are not trivially
  // short-circuited.
  for (std::uint64_t i = 0; i < 4 + salt % 4; ++i) c.tick_send();
  if (salt % 3 == 0) c.on_restart();
  for (std::uint64_t i = 0; i < salt % 7; ++i) c.tick_send();
  return c;
}

void BM_FtvcMergeDeliver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Ftvc mine = busy_clock(0, n, 1);
  const Ftvc incoming = busy_clock(1 % n, n, 2);
  for (auto _ : state) {
    mine.merge_deliver(incoming);
    benchmark::DoNotOptimize(mine);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FtvcTickSend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Ftvc mine = busy_clock(0, n, 1);
  for (auto _ : state) {
    mine.tick_send();
    benchmark::DoNotOptimize(mine);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FtvcEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Ftvc mine = busy_clock(0, n, 5);
  for (auto _ : state) {
    Writer w;
    mine.encode(w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FtvcLessThan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Ftvc a = busy_clock(0, n, 1);
  Ftvc b = busy_clock(1 % n, n, 2);
  b.merge_deliver(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.less_than(b));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PlainVectorClockMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorClock mine(0, n);
  VectorClock incoming(1 % n, n);
  incoming.tick();
  for (auto _ : state) {
    mine.merge_deliver(incoming);
    benchmark::DoNotOptimize(mine);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_FtvcMergeDeliver)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_FtvcTickSend)->Arg(4)->Arg(256);
BENCHMARK(BM_FtvcEncode)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_FtvcLessThan)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_PlainVectorClockMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

int main(int argc, char** argv) {
  print_header("E2: FTVC operation throughput", "Figure 2 (the FTVC rules)",
               "clock maintenance is O(n) per event; versions add negligible "
               "cost over a plain Mattern clock");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
