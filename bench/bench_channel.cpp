// Channel data-plane microbench: the lock-free ring/wheel LiveChannel
// against an in-bench mirror of the old mutex+condvar channel, under
// 1/4/16 producers and due-only vs delayed-mix traffic.
//
// Each run moves a fixed frame count through one channel end to end and
// reports wall-clock throughput plus dequeue lag percentiles (pop instant
// minus the frame's not_before — how long an eligible frame waited for the
// consumer). The mutex baseline is the pre-refactor implementation almost
// line for line: vector under a mutex, O(n) reservoir scan per pop,
// condvar broadcast wakeups. The contrast it exists to show: that scan is
// quadratic in backlog, so it collapses under producer contention while
// the ring/wheel channel stays flat.
//
// Emits BENCH_channel.json (override with --out=FILE) for CI artifact
// upload; prints a human-readable table. Exits non-zero if any run loses a
// frame or times out, so CI smoke-runs it as a correctness check too.
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "src/harness/table_printer.h"
#include "src/live/live_channel.h"
#include "src/live/live_clock.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/wire/frame_buf.h"

using namespace optrec;

namespace {

/// The pre-refactor LiveChannel, kept verbatim as the bench baseline:
/// mutex-guarded vector, reservoir scan over ALL frames per pop, condvar
/// wakeups. Same non-FIFO pick and control-priority semantics.
class MutexChannel {
 public:
  void push(LiveFrame frame) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      frames_.push_back(std::move(frame));
    }
    cv_.notify_one();
  }

  std::optional<LiveFrame> pop_ready(const LiveClock& clock,
                                     SimTime wait_until, Rng& rng) {
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const SimTime now = clock.now();
      std::size_t pick = kNone;
      std::size_t ready = 0;
      SimTime next_due = kSimTimeMax;
      for (std::size_t i = 0; i < frames_.size(); ++i) {
        const LiveFrame& f = frames_[i];
        if (f.not_before > now) {
          next_due = std::min(next_due, f.not_before);
          continue;
        }
        if (f.kind != LiveFrame::Kind::kWire) {
          pick = i;
          break;
        }
        ++ready;
        if (rng.uniform(ready) == 0) pick = i;
      }
      if (pick != kNone) {
        LiveFrame out = std::move(frames_[pick]);
        frames_[pick] = std::move(frames_.back());
        frames_.pop_back();
        return out;
      }
      if (now >= wait_until) return std::nullopt;
      cv_.wait_until(lock,
                     clock.to_time_point(std::min(wait_until, next_due)));
    }
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<LiveFrame> frames_;
};

struct Run {
  const char* impl = "";
  const char* mix = "";
  int producers = 0;
  std::size_t frames = 0;
  bool ok = false;
  SimTime wall_us = 0;
  double msgs_per_sec = 0;
  bench::LatencySummary lag;
  std::size_t ring_high_water = 0;   // ring impl only
  std::uint64_t ring_overflows = 0;  // ring impl only
};

LiveFrame make_frame(ProcessId src, SimTime not_before, SimTime sent_at) {
  LiveFrame f;
  f.kind = LiveFrame::Kind::kWire;
  f.src = src;
  f.wire = FramePool::global().wrap(
      {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08});
  f.not_before = not_before;
  f.sent_at = sent_at;
  return f;
}

/// Drive `total` frames through `channel` with `producers` pushers.
/// `max_delay_us` == 0 is the due-only mix; otherwise ~half the frames park
/// in the delay path for up to that long.
template <typename Channel>
Run drive(Channel& channel, const char* impl, int producers,
          std::size_t total, SimTime max_delay_us) {
  Run run;
  run.impl = impl;
  run.mix = max_delay_us == 0 ? "due_only" : "delayed_mix";
  run.producers = producers;
  run.frames = total;

  LiveClock clock;
  Rng pop_rng(17);
  const std::size_t per_producer = total / static_cast<std::size_t>(producers);
  telemetry::FixedHistogram lag_us;

  const SimTime started = clock.now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&channel, &clock, p, per_producer, max_delay_us] {
      Rng rng(static_cast<std::uint64_t>(p) * 31 + 7);
      for (std::size_t i = 0; i < per_producer; ++i) {
        const SimTime now = clock.now();
        const SimTime delay = (max_delay_us == 0 || rng.chance(0.5))
                                  ? 0
                                  : rng.uniform(max_delay_us);
        channel.push(make_frame(static_cast<ProcessId>(p), now + delay, now));
      }
    });
  }

  const std::size_t want = per_producer * static_cast<std::size_t>(producers);
  std::size_t popped = 0;
  bool lost = false;
  while (popped < want) {
    auto f = channel.pop_ready(clock, clock.now() + millis(2000), pop_rng);
    if (!f) {
      lost = true;  // a frame never became poppable: report and fail
      break;
    }
    lag_us.observe(static_cast<double>(clock.now() - f->not_before));
    ++popped;
  }
  for (auto& t : threads) t.join();

  run.ok = !lost && popped == want;
  run.wall_us = clock.now() - started;
  const double wall_s = static_cast<double>(run.wall_us) / 1e6;
  run.msgs_per_sec =
      wall_s > 0 ? static_cast<double>(popped) / wall_s : 0.0;
  run.lag = bench::LatencySummary::of(lag_us);
  if constexpr (std::is_same_v<Channel, LiveChannel>) {
    run.ring_high_water = channel.ring_high_water();
    run.ring_overflows = channel.ring_overflows();
  }
  return run;
}

std::string fmt(double v, int prec = 0) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_file = "BENCH_channel.json";
  // Default sized so the quadratic mutex baseline finishes in ~10s per
  // run; the ring side is indifferent (it does this in well under 100ms).
  std::size_t frames = 48000;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_file = arg + 6;
    } else if (std::strncmp(arg, "--frames=", 9) == 0) {
      frames = std::strtoull(arg + 9, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "bench_channel: unknown flag '%s' (--out= --frames=)\n",
                   arg);
      return 2;
    }
  }

  std::printf("bench_channel: %zu frames per run, producers 1/4/16, "
              "due-only and delayed-mix\n\n",
              frames);

  const int kProducerCounts[] = {1, 4, 16};
  // Delayed runs park ~half the frames for up to 1 ms: long enough to
  // exercise the wheel/next_due machinery, short enough that the run is
  // dominated by queueing, not sleeping.
  const SimTime kMaxDelay = 1000;

  std::vector<Run> runs;
  for (int producers : kProducerCounts) {
    for (SimTime delay : {SimTime(0), kMaxDelay}) {
      {
        MutexChannel ch;
        runs.push_back(drive(ch, "mutex_condvar", producers, frames, delay));
      }
      {
        LiveChannel ch;
        runs.push_back(drive(ch, "ring_wheel", producers, frames, delay));
      }
    }
  }

  TablePrinter table({"impl", "mix", "producers", "msgs/s", "lag p50 us",
                      "lag p90 us", "lag p99 us", "ring hw", "spills", "ok"});
  for (const Run& r : runs) {
    table.add_row({r.impl, r.mix, std::to_string(r.producers),
                   fmt(r.msgs_per_sec), fmt(r.lag.p50), fmt(r.lag.p90),
                   fmt(r.lag.p99), std::to_string(r.ring_high_water),
                   std::to_string(r.ring_overflows), r.ok ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::ofstream os(out_file, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_channel: cannot open '%s'\n",
                 out_file.c_str());
    return 2;
  }
  JsonWriter w(os);
  w.begin_object();
  bench::write_bench_preamble(w, "channel");
  w.key("config").begin_object();
  w.kv("frames_per_run", std::uint64_t{frames});
  w.kv("max_delay_us", std::uint64_t{kMaxDelay});
  w.end_object();
  w.key("results").begin_array();
  for (const Run& r : runs) {
    w.begin_object();
    w.kv("impl", r.impl);
    w.kv("mix", r.mix);
    w.kv("producers", std::uint64_t(r.producers));
    w.kv("frames", std::uint64_t{r.frames});
    w.kv("ok", r.ok);
    w.kv("wall_time_us", r.wall_us);
    w.kv("msgs_per_sec", r.msgs_per_sec);
    bench::write_latency_fields(w, "dequeue_lag", r.lag);
    w.kv("ring_high_water", std::uint64_t{r.ring_high_water});
    w.kv("ring_overflows", r.ring_overflows);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  os.flush();
  std::printf("\nwrote %s\n", out_file.c_str());

  for (const Run& r : runs) {
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: %s/%s producers=%d lost frames\n", r.impl,
                   r.mix, r.producers);
      return 1;
    }
  }
  return 0;
}
