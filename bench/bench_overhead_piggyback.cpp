// E4 — regenerates Section 6.9(1): FTVC piggyback overhead.
//
// The paper: the protocol tags an FTVC onto every message — O(n) entries,
// each carrying a version number of ~log2(f) bits. Two views:
//   (a) analytic: serialized FTVC bytes vs n and failure count f, compared
//       against a plain Mattern clock (Sistla-Welch/Peterson-Kearns family)
//       and against the O(n^2 f) piggyback model of Smith-Johnson-Tygar;
//   (b) measured: piggyback bytes per message from actual runs with real
//       failure counts.
#include "bench_util.h"
#include "src/clocks/ftvc.h"
#include "src/clocks/vector_clock.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

/// An FTVC where every entry has version f and a mid-size timestamp —
/// the steady state after every process failed f times.
Ftvc clock_after_failures(std::size_t n, Version f, Timestamp ts) {
  Writer w;
  w.put_u32(0);
  w.put_u32(static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    FtvcEntry e{f, ts};
    e.encode(w);
  }
  Reader r(w.buffer());
  return Ftvc::decode(r);
}

void print_analytic() {
  print_header("E4: piggyback overhead", "Section 6.9(1)",
               "FTVC costs O(n) with ~log2(f) extra bits per entry; "
               "Smith-Johnson-Tygar's clock costs O(n^2 f)");

  TablePrinter table({"n", "f", "FTVC bytes", "plain VC bytes",
                      "SJT model bytes (n^2*f entries)"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
    for (Version f : {0u, 1u, 4u, 16u}) {
      const Ftvc ftvc = clock_after_failures(n, f, 100000);
      VectorClock plain(0, n);
      // SJT maintain O(n^2 f) timestamps; model each as one FTVC entry.
      const std::size_t entry_bytes =
          varint_size(f) + varint_size(100000);
      const std::size_t sjt =
          n * n * std::max<std::size_t>(1, f) * entry_bytes;
      table.add_row({std::to_string(n), std::to_string(f),
                     std::to_string(ftvc.wire_size()),
                     std::to_string(plain.wire_size()), std::to_string(sjt)});
    }
  }
  table.print(std::cout);
  std::printf("\n");
}

void print_measured() {
  std::printf("measured piggyback bytes per message (runs with real "
              "failures):\n\n");
  TablePrinter table({"n", "crashes", "piggyback B/msg", "payload B/msg"});
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    for (std::size_t crashes : {0u, 2u}) {
      double piggyback = 0, payload = 0;
      constexpr int kRuns = 4;
      for (int i = 0; i < kRuns; ++i) {
        auto config = standard_config(ProtocolKind::kDamaniGarg, 500 + i, n);
        Rng rng(700 + i);
        config.failures =
            FailurePlan::random(rng, n, crashes, millis(20), millis(150));
        const auto result = run_experiment(config);
        piggyback += result.metrics.piggyback_per_message();
        payload += static_cast<double>(result.metrics.payload_bytes) /
                   static_cast<double>(result.metrics.app_messages_sent);
      }
      table.add_row({std::to_string(n), std::to_string(crashes),
                     TablePrinter::fmt(piggyback / kRuns, 1),
                     TablePrinter::fmt(payload / kRuns, 1)});
    }
  }
  table.print(std::cout);
  std::printf("\n");
}

void BM_PiggybackSerialize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<Version>(state.range(1));
  const Ftvc clock = clock_after_failures(n, f, 12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.wire_size());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_PiggybackSerialize)
    ->Args({4, 0})
    ->Args({4, 16})
    ->Args({64, 0})
    ->Args({64, 16})
    ->Args({256, 16});

int main(int argc, char** argv) {
  print_analytic();
  print_measured();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
