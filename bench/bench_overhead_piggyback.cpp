// E4 — regenerates Section 6.9(1): FTVC piggyback overhead.
//
// The paper: the protocol tags an FTVC onto every message — O(n) entries,
// each carrying a version number of ~log2(f) bits. Two views:
//   (a) analytic: serialized FTVC bytes vs n and failure count f, compared
//       against a plain Mattern clock (Sistla-Welch/Peterson-Kearns family)
//       and against the O(n^2 f) piggyback model of Smith-Johnson-Tygar;
//   (b) measured: piggyback bytes per message from actual runs with real
//       failure counts.
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "src/clocks/ftvc.h"
#include "src/clocks/vector_clock.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

/// An FTVC where every entry has version f and a mid-size timestamp —
/// the steady state after every process failed f times.
Ftvc clock_after_failures(std::size_t n, Version f, Timestamp ts) {
  Writer w;
  w.put_u32(0);
  w.put_u32(static_cast<std::uint32_t>(n));
  for (std::size_t j = 0; j < n; ++j) {
    FtvcEntry e{f, ts};
    e.encode(w);
  }
  Reader r(w.buffer());
  return Ftvc::decode(r);
}

struct AnalyticRow {
  std::size_t n = 0;
  Version f = 0;
  std::size_t ftvc_bytes = 0;
  std::size_t plain_vc_bytes = 0;
  std::size_t sjt_model_bytes = 0;
};

struct MeasuredRow {
  std::size_t n = 0;
  std::size_t crashes = 0;
  double piggyback_per_msg = 0;
  double payload_per_msg = 0;
};

std::vector<AnalyticRow> print_analytic() {
  std::vector<AnalyticRow> rows;
  print_header("E4: piggyback overhead", "Section 6.9(1)",
               "FTVC costs O(n) with ~log2(f) extra bits per entry; "
               "Smith-Johnson-Tygar's clock costs O(n^2 f)");

  TablePrinter table({"n", "f", "FTVC bytes", "plain VC bytes",
                      "SJT model bytes (n^2*f entries)"});
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
    for (Version f : {0u, 1u, 4u, 16u}) {
      const Ftvc ftvc = clock_after_failures(n, f, 100000);
      VectorClock plain(0, n);
      // SJT maintain O(n^2 f) timestamps; model each as one FTVC entry.
      const std::size_t entry_bytes =
          varint_size(f) + varint_size(100000);
      const std::size_t sjt =
          n * n * std::max<std::size_t>(1, f) * entry_bytes;
      rows.push_back({n, f, ftvc.wire_size(), plain.wire_size(), sjt});
      table.add_row({std::to_string(n), std::to_string(f),
                     std::to_string(ftvc.wire_size()),
                     std::to_string(plain.wire_size()), std::to_string(sjt)});
    }
  }
  table.print(std::cout);
  std::printf("\n");
  return rows;
}

std::vector<MeasuredRow> print_measured() {
  std::vector<MeasuredRow> rows;
  std::printf("measured piggyback bytes per message (runs with real "
              "failures):\n\n");
  TablePrinter table({"n", "crashes", "piggyback B/msg", "payload B/msg"});
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    for (std::size_t crashes : {0u, 2u}) {
      double piggyback = 0, payload = 0;
      constexpr int kRuns = 4;
      for (int i = 0; i < kRuns; ++i) {
        auto config = standard_config(ProtocolKind::kDamaniGarg, 500 + i, n);
        Rng rng(700 + i);
        config.failures =
            FailurePlan::random(rng, n, crashes, millis(20), millis(150));
        const auto result = run_experiment(config);
        piggyback += result.metrics.piggyback_per_message();
        payload += static_cast<double>(result.metrics.payload_bytes) /
                   static_cast<double>(result.metrics.app_messages_sent);
      }
      rows.push_back({n, crashes, piggyback / kRuns, payload / kRuns});
      table.add_row({std::to_string(n), std::to_string(crashes),
                     TablePrinter::fmt(piggyback / kRuns, 1),
                     TablePrinter::fmt(payload / kRuns, 1)});
    }
  }
  table.print(std::cout);
  std::printf("\n");
  return rows;
}

int write_json(const std::string& out_file,
               const std::vector<AnalyticRow>& analytic,
               const std::vector<MeasuredRow>& measured) {
  std::ofstream os(out_file, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_overhead_piggyback: cannot open '%s'\n",
                 out_file.c_str());
    return 2;
  }
  JsonWriter w(os);
  w.begin_object();
  write_bench_preamble(w, "overhead_piggyback");
  w.key("config").begin_object();
  w.kv("protocol", "dg");
  w.kv("measured_runs_per_cell", std::uint64_t{4});
  w.end_object();
  w.key("results").begin_object();
  w.key("analytic").begin_array();
  for (const AnalyticRow& r : analytic) {
    w.begin_object();
    w.kv("n", std::uint64_t{r.n});
    w.kv("failures", std::uint64_t{r.f});
    w.kv("ftvc_bytes", std::uint64_t{r.ftvc_bytes});
    w.kv("plain_vc_bytes", std::uint64_t{r.plain_vc_bytes});
    w.kv("sjt_model_bytes", std::uint64_t{r.sjt_model_bytes});
    w.end_object();
  }
  w.end_array();
  w.key("measured").begin_array();
  for (const MeasuredRow& r : measured) {
    w.begin_object();
    w.kv("n", std::uint64_t{r.n});
    w.kv("crashes", std::uint64_t{r.crashes});
    w.kv("piggyback_bytes_per_msg", r.piggyback_per_msg);
    w.kv("payload_bytes_per_msg", r.payload_per_msg);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  os << "\n";
  return 0;
}

void BM_PiggybackSerialize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<Version>(state.range(1));
  const Ftvc clock = clock_after_failures(n, f, 12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.wire_size());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_PiggybackSerialize)
    ->Args({4, 0})
    ->Args({4, 16})
    ->Args({64, 0})
    ->Args({64, 16})
    ->Args({256, 16});

int main(int argc, char** argv) {
  // Pull our own --out= flag before google-benchmark sees the argv.
  std::string out_file;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_file = argv[i] + 6;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const std::vector<AnalyticRow> analytic = print_analytic();
  const std::vector<MeasuredRow> measured = print_measured();
  if (!out_file.empty()) {
    if (const int rc = write_json(out_file, analytic, measured); rc != 0) {
      return rc;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
