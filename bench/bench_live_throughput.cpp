// Live-runtime throughput/latency bench.
//
// Not a google-benchmark microbenchmark: each measurement drives a real
// fleet of worker threads through LiveRuntime, so one run IS the timed
// unit. Every protocol runs the same workload twice — failure-free, and
// with two injected crashes — and we report wall-clock throughput,
// delivery-latency percentiles, exact piggyback bytes per message, and the
// crash-to-restart recovery time.
//
// Emits BENCH_live.json (override with --out=FILE) for CI artifact upload;
// prints a human-readable table to stdout. Exits non-zero if any run fails
// to quiesce, so CI catches live-runtime regressions.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/harness/failure_plan.h"
#include "src/harness/table_printer.h"
#include "src/live/live_runtime.h"
#include "src/util/json.h"

using namespace optrec;

namespace {

constexpr ProtocolKind kProtocols[] = {
    ProtocolKind::kDamaniGarg,
    ProtocolKind::kPessimistic,
    ProtocolKind::kCoordinated,
    ProtocolKind::kCascading,
};

struct Row {
  const char* protocol = "";
  const char* phase = "";
  std::size_t producers = 0;  // per-channel fan-in: n - 1
  bool quiesced = false;
  std::uint64_t delivered = 0;
  SimTime wall_us = 0;
  double msgs_per_sec = 0;
  bench::LatencySummary latency;
  double piggyback_per_msg = 0;
  double recovery_mean_us = 0;
  double recovery_max_us = 0;
  std::uint64_t rollbacks = 0;
};

Row run_one(ProtocolKind protocol, std::size_t n, std::uint64_t seed,
            std::size_t crashes) {
  LiveConfig config;
  config.n = n;
  config.seed = seed;
  config.protocol = protocol;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.enable_oracle = false;
  config.time_cap = millis(20000);
  if (crashes > 0) {
    Rng rng(seed * 977 + 3);
    config.crashes =
        FailurePlan::random(rng, n, crashes, millis(20), millis(120)).crashes;
  }

  LiveRuntime runtime(config);
  const LiveResult result = runtime.run();

  Row row;
  row.protocol = protocol_name(protocol);
  row.phase = crashes > 0 ? "crashes" : "failure_free";
  row.producers = n - 1;
  row.quiesced = result.quiesced;
  row.delivered = result.metrics.messages_delivered;
  row.wall_us = result.wall_time;
  const double wall_s = static_cast<double>(result.wall_time) / 1e6;
  row.msgs_per_sec =
      wall_s > 0 ? static_cast<double>(row.delivered) / wall_s : 0.0;
  row.latency = bench::LatencySummary::of(result.delivery_latency_us);
  row.piggyback_per_msg = result.metrics.piggyback_per_message();
  row.recovery_mean_us = result.metrics.restart_latency.mean();
  row.recovery_max_us = result.metrics.restart_latency.max();
  row.rollbacks = result.metrics.rollbacks;
  return row;
}

std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_file = "BENCH_live.json";
  std::size_t n = 8;
  std::uint64_t seed = 1;
  std::size_t crashes = 2;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_file = arg + 6;
    } else if (std::strncmp(arg, "--n=", 4) == 0) {
      n = std::strtoull(arg + 4, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--crashes=", 10) == 0) {
      crashes = std::strtoull(arg + 10, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "bench_live_throughput: unknown flag '%s' "
                   "(--out= --n= --seed= --crashes=)\n",
                   arg);
      return 2;
    }
  }

  std::printf("bench_live_throughput: n=%zu seed=%llu crashes=%zu\n\n", n,
              (unsigned long long)seed, crashes);

  std::vector<Row> rows;
  for (ProtocolKind protocol : kProtocols) {
    rows.push_back(run_one(protocol, n, seed, 0));
    rows.push_back(run_one(protocol, n, seed, crashes));
  }
  // Channel fan-in sweep: with an all-to-all workload each inbox channel
  // sees n-1 producers, so n = 2/5/17 puts 1/4/16 concurrent pushers on
  // every channel — the contention axis bench_channel measures in
  // isolation, here end to end through the full protocol stack.
  std::vector<Row> fanin_rows;
  for (std::size_t fanin_n : {std::size_t{2}, std::size_t{5},
                              std::size_t{17}}) {
    Row row = run_one(ProtocolKind::kDamaniGarg, fanin_n, seed, 0);
    row.phase = "fanin";
    fanin_rows.push_back(row);
  }

  TablePrinter table({"protocol", "phase", "msgs/s", "p50 us", "p90 us",
                      "p99 us", "piggyback B/msg", "recovery ms", "rollbacks",
                      "quiesced"});
  for (const Row& r : rows) {
    table.add_row({r.protocol, r.phase, fmt(r.msgs_per_sec, 0),
                   fmt(r.latency.p50, 0), fmt(r.latency.p90, 0),
                   fmt(r.latency.p99, 0), fmt(r.piggyback_per_msg),
                   fmt(r.recovery_mean_us / 1000.0, 2),
                   std::to_string(r.rollbacks), r.quiesced ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::printf("\nchannel fan-in sweep (dg, failure-free):\n");
  TablePrinter fanin_table({"producers/chan", "msgs/s", "p50 us", "p90 us",
                            "p99 us", "quiesced"});
  for (const Row& r : fanin_rows) {
    fanin_table.add_row({std::to_string(r.producers), fmt(r.msgs_per_sec, 0),
                         fmt(r.latency.p50, 0), fmt(r.latency.p90, 0),
                         fmt(r.latency.p99, 0), r.quiesced ? "yes" : "NO"});
  }
  fanin_table.print(std::cout);
  rows.insert(rows.end(), fanin_rows.begin(), fanin_rows.end());

  std::ofstream os(out_file, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_live_throughput: cannot open '%s'\n",
                 out_file.c_str());
    return 2;
  }
  JsonWriter w(os);
  w.begin_object();
  bench::write_bench_preamble(w, "live");
  w.key("config").begin_object();
  w.kv("n", std::uint64_t{n});
  w.kv("seed", seed);
  w.kv("crashes", std::uint64_t{crashes});
  w.kv("workload", "counter");
  w.end_object();
  w.key("results").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("protocol", r.protocol);
    w.kv("phase", r.phase);
    w.kv("producers_per_channel", std::uint64_t{r.producers});
    w.kv("quiesced", r.quiesced);
    w.kv("messages_delivered", r.delivered);
    w.kv("wall_time_us", r.wall_us);
    w.kv("msgs_per_sec", r.msgs_per_sec);
    bench::write_latency_fields(w, "delivery_latency", r.latency);
    w.kv("piggyback_bytes_per_msg", r.piggyback_per_msg);
    w.kv("recovery_mean_us", r.recovery_mean_us);
    w.kv("recovery_max_us", r.recovery_max_us);
    w.kv("rollbacks", r.rollbacks);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  os.flush();
  std::printf("\nwrote %s\n", out_file.c_str());

  for (const Row& r : rows) {
    if (!r.quiesced) {
      std::fprintf(stderr, "FAIL: %s/%s did not quiesce\n", r.protocol,
                   r.phase);
      return 1;
    }
  }
  return 0;
}
