// E12 — regenerates Section 6.2/6.8: handling of concurrent failures.
//
// "Concurrent failures have the same effect as that of multiple
// non-concurrent failures." k processes crash at the same instant
// (k = 1..n); recovery must stay asynchronous, rollbacks bounded, and the
// run must quiesce consistently. The simultaneous/staggered pair of rows
// shows the equivalence the paper claims.
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

void print_table() {
  print_header("E12: concurrent failures", "Sections 6.2 / 6.8",
               "k simultaneous crashes behave like k staggered ones: "
               "bounded rollbacks, zero blocking, consistent quiescence");

  TablePrinter table({"k crashes", "timing", "restarts", "rollbacks",
                      "worst/proc/failure", "obsolete", "blocked",
                      "quiesced"});
  constexpr std::size_t kN = 6;
  constexpr int kRuns = 5;
  for (std::size_t k : {1u, 2u, 3u, 6u}) {
    for (bool simultaneous : {true, false}) {
      double restarts = 0, rollbacks = 0, worst = 0, obsolete = 0,
             blocked = 0, quiesced = 0;
      for (int i = 0; i < kRuns; ++i) {
        auto config =
            standard_config(ProtocolKind::kDamaniGarg, 6000 + i, kN, 6, 48);
        Rng rng(6100 + i);
        config.failures = FailurePlan::random(rng, kN, k, millis(30),
                                              millis(120), simultaneous);
        const auto result = run_experiment(config);
        restarts += static_cast<double>(result.metrics.restarts);
        rollbacks += static_cast<double>(result.metrics.rollbacks);
        worst += static_cast<double>(
            result.metrics.max_rollbacks_per_process_per_failure());
        obsolete +=
            static_cast<double>(result.metrics.messages_discarded_obsolete);
        blocked +=
            static_cast<double>(result.metrics.recovery_blocked_time);
        quiesced += result.quiesced ? 1 : 0;
      }
      table.add_row({std::to_string(k),
                     simultaneous ? "simultaneous" : "staggered",
                     TablePrinter::fmt(restarts / kRuns, 1),
                     TablePrinter::fmt(rollbacks / kRuns, 1),
                     TablePrinter::fmt(worst / kRuns, 2),
                     TablePrinter::fmt(obsolete / kRuns, 1),
                     fmt_us(blocked / kRuns),
                     TablePrinter::fmt(100 * quiesced / kRuns, 0) + " %"});
    }
  }
  table.print(std::cout);
  std::printf("\n(restarts may exceed k when a crash lands on a process "
              "already recovering another incarnation's paperwork; "
              "worst/proc/failure stays <= 1 throughout)\n\n");
}

void BM_ConcurrentFailures(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(ProtocolKind::kDamaniGarg, seed++, 6, 6, 48);
    Rng rng(seed);
    config.failures =
        FailurePlan::random(rng, 6, k, millis(30), millis(120), true);
    benchmark::DoNotOptimize(run_experiment(config).metrics.restarts);
  }
}

}  // namespace

BENCHMARK(BM_ConcurrentFailures)->Arg(1)->Arg(3)->Arg(6);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
