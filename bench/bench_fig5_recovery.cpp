// E3 — regenerates Figure 5's recovery path as measurements: the latency and
// work of a full crash->restart->token->rollback cycle under the Damani-Garg
// protocol, as a function of how much unlogged work the failure destroys
// (the flush interval) and of system size.
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

void print_table() {
  print_header(
      "E3: recovery-path anatomy", "Figure 5 (the recovery example)",
      "restart = restore + replay + token broadcast, no waiting; orphans "
      "roll back once when the token lands; obsolete messages are discarded");

  TablePrinter table({"flush interval", "lost msgs", "replayed", "rollbacks",
                      "obsolete drops", "restart latency", "postponed"});
  constexpr int kRuns = 8;
  for (SimTime flush : {millis(5), millis(20), millis(80), millis(320)}) {
    double lost = 0, replayed = 0, rollbacks = 0, obsolete = 0, latency = 0,
           postponed = 0;
    for (int i = 0; i < kRuns; ++i) {
      auto config = standard_config(ProtocolKind::kDamaniGarg, 300 + i);
      config.process.flush_interval = flush;
      config.failures = FailurePlan::single(1, millis(120));
      const auto result = run_experiment(config);
      lost += static_cast<double>(result.metrics.messages_lost_in_crash);
      replayed += static_cast<double>(result.metrics.messages_replayed);
      rollbacks += static_cast<double>(result.metrics.rollbacks);
      obsolete +=
          static_cast<double>(result.metrics.messages_discarded_obsolete);
      latency += result.metrics.restart_latency.mean();
      postponed += static_cast<double>(result.metrics.messages_postponed);
    }
    table.add_row({fmt_us(static_cast<double>(flush)),
                   TablePrinter::fmt(lost / kRuns, 1),
                   TablePrinter::fmt(replayed / kRuns, 1),
                   TablePrinter::fmt(rollbacks / kRuns, 1),
                   TablePrinter::fmt(obsolete / kRuns, 1),
                   fmt_us(latency / kRuns),
                   TablePrinter::fmt(postponed / kRuns, 1)});
  }
  table.print(std::cout);
  std::printf("\n(the shorter the flush interval, the less work a failure "
              "destroys and the fewer orphans it creates)\n\n");
}

void BM_CrashRecoveryCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(ProtocolKind::kDamaniGarg, seed++, n);
    config.failures = FailurePlan::single(1, millis(120));
    const auto result = run_experiment(config);
    benchmark::DoNotOptimize(result.metrics.restarts);
  }
}

}  // namespace

BENCHMARK(BM_CrashRecoveryCycle)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
