// E13 — the paper's Section 7 future-work study: shrinking the FTVC
// piggyback with differential encoding (Singhal-Kshemkalyani applied per
// destination).
//
// Real message traces are captured from Damani-Garg runs on a FIFO network
// (the codec's requirement); every (src,dst) stream is re-encoded offline
// with the differential codec and the byte counts compared against the full
// vectors actually shipped. Failure runs are included: incarnation changes
// simply travel as changed entries; rollback-invalidation is modelled by
// resetting the per-destination cache at each sender rollback (counted via
// full-clock re-sends).
#include <cstring>
#include <fstream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "src/clocks/diff_codec.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

struct TraceResult {
  std::size_t messages = 0;
  std::size_t full_bytes = 0;
  std::size_t diff_bytes = 0;
  std::size_t payload_bytes = 0;
};

TraceResult replay_trace(std::size_t n, std::uint64_t seed,
                         std::size_t crashes, WorkloadKind workload) {
  ScenarioConfig config =
      standard_config(ProtocolKind::kDamaniGarg, seed, n, 6, 48);
  config.workload.kind = workload;
  if (workload == WorkloadKind::kPingPong) config.workload.depth = 200;
  config.network.fifo = true;  // the codec's delivery-order requirement
  if (crashes > 0) {
    Rng rng(seed * 13 + 1);
    config.failures =
        FailurePlan::random(rng, n, crashes, millis(20), millis(150));
  }

  Scenario scenario(config);
  TraceResult result;
  // One encoder per sender, keyed lazily; decode side checked for fidelity.
  std::map<ProcessId, DiffFtvcEncoder> encoders;
  std::map<std::pair<ProcessId, ProcessId>, DiffFtvcDecoder> decoders;
  scenario.net().set_message_tap([&](const Message& m) {
    if (m.kind != MessageKind::kApp || m.clock.size() == 0) return;
    result.messages += 1;
    result.full_bytes += m.clock.wire_size();
    result.payload_bytes += m.payload.size();
    auto [enc_it, created] = encoders.try_emplace(m.src, n);
    const Bytes wire = enc_it->second.encode_for(m.dst, m.clock);
    result.diff_bytes += wire.size();
    auto [dec_it, dcreated] =
        decoders.try_emplace(std::make_pair(m.src, m.dst), n);
    // Fidelity: reconstruction must be exact, or the study is meaningless.
    if (!(dec_it->second.decode_from(m.src, wire) == m.clock)) {
      std::abort();
    }
  });
  scenario.run();
  return result;
}

struct Row {
  std::string workload;
  std::size_t n = 0;
  std::size_t crashes = 0;
  TraceResult trace;
};

std::vector<Row> print_table() {
  print_header("E13: differential piggyback (future-work study)",
               "Section 7 ('send only one timestamp with each message')",
               "per-destination diffs shrink the O(n) piggyback toward the "
               "single-entry ideal on FIFO channels");

  std::vector<Row> rows;
  TablePrinter table({"workload", "n", "crashes", "messages", "full B/msg",
                      "diff B/msg", "saving"});
  for (WorkloadKind workload : {WorkloadKind::kPingPong, WorkloadKind::kCounter}) {
    WorkloadSpec spec;
    spec.kind = workload;
    for (std::size_t n : {4u, 8u, 16u, 32u}) {
      for (std::size_t crashes : {0u, 2u}) {
        const TraceResult r = replay_trace(n, 9000 + n, crashes, workload);
        if (r.messages == 0) continue;
        rows.push_back({spec.name(), n, crashes, r});
        const double full = static_cast<double>(r.full_bytes) /
                            static_cast<double>(r.messages);
        const double diff = static_cast<double>(r.diff_bytes) /
                            static_cast<double>(r.messages);
        table.add_row({spec.name(), std::to_string(n), std::to_string(crashes),
                       std::to_string(r.messages), TablePrinter::fmt(full, 1),
                       TablePrinter::fmt(diff, 1),
                       TablePrinter::fmt(100.0 * (1.0 - diff / full), 0) +
                           " %"});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nHONEST FINDING: the technique's payoff depends on traffic locality. "
      "Pairwise traffic (pingpong) approaches the §7 single-entry ideal — "
      "diff B/msg stays flat as n grows. Scattered traffic (counter, random "
      "destinations) CHANGES most entries between consecutive same-pair "
      "messages, so diffs cost slightly MORE than full vectors; a deployment "
      "would pick per-destination adaptively (diff iff it is smaller, one "
      "flag bit). The fidelity check (exact reconstruction) passed on every "
      "message of every trace.\n\n");
  return rows;
}

int write_json(const std::string& out_file, const std::vector<Row>& rows) {
  std::ofstream os(out_file, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_diff_piggyback: cannot open '%s'\n",
                 out_file.c_str());
    return 2;
  }
  JsonWriter w(os);
  w.begin_object();
  write_bench_preamble(w, "diff_piggyback");
  w.key("config").begin_object();
  w.kv("protocol", "dg");
  w.kv("fifo", true);
  w.kv("intensity", std::uint64_t{6});
  w.kv("depth", std::uint64_t{48});
  w.end_object();
  w.key("results").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("workload", r.workload);
    w.kv("n", std::uint64_t{r.n});
    w.kv("crashes", std::uint64_t{r.crashes});
    w.kv("messages", std::uint64_t{r.trace.messages});
    w.kv("full_bytes", std::uint64_t{r.trace.full_bytes});
    w.kv("diff_bytes", std::uint64_t{r.trace.diff_bytes});
    w.kv("payload_bytes", std::uint64_t{r.trace.payload_bytes});
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return 0;
}

void BM_DiffEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DiffFtvcEncoder enc(n);
  Ftvc clock(0, n);
  enc.encode_for(1, clock);
  for (auto _ : state) {
    clock.tick_send();
    benchmark::DoNotOptimize(enc.encode_for(1, clock));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_DiffEncode)->Arg(4)->Arg(32)->Arg(256);

int main(int argc, char** argv) {
  // Pull our own --out= flag before google-benchmark sees the argv.
  std::string out_file;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_file = argv[i] + 6;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  const std::vector<Row> rows = print_table();
  if (!out_file.empty()) {
    if (const int rc = write_json(out_file, rows); rc != 0) return rc;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
