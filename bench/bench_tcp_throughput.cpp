// TCP-backend throughput/latency bench.
//
// Like bench_live_throughput, but the fleet spans real loopback sockets:
// an in-process TcpCluster (one TcpNode per node id, ephemeral ports, the
// gossip quiescence protocol) instead of in-process channels. Every
// protocol runs the same workload twice — failure-free, and with two
// injected crashes — and we report wall-clock throughput, delivery-latency
// percentiles, exact piggyback bytes per message, recovery time, and the
// socket-layer counters (frames, bytes, token retries).
//
// Emits BENCH_tcp.json (override with --out=FILE) for CI artifact upload;
// prints a human-readable table to stdout. Exits non-zero if any run fails
// to quiesce, so CI catches TCP-backend regressions.
//
// Topology-file mode (scripts/run_tcp_bench.sh drives it): --topology=FILE
// skips the in-process sweep and instead runs the fleet the file describes
// on its fixed ports — every node in this process with --node=all, or just
// node K with --node=K so each machine of a real multi-NIC fleet runs its
// own bench process against the shared file. --protocol/--workload pick the
// single configuration to run (the sweep makes no sense across machines).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "src/harness/failure_plan.h"
#include "src/harness/table_printer.h"
#include "src/tcp/tcp_cluster.h"
#include "src/util/json.h"

using namespace optrec;

namespace {

constexpr ProtocolKind kProtocols[] = {
    ProtocolKind::kDamaniGarg,
    ProtocolKind::kPessimistic,
    ProtocolKind::kCoordinated,
    ProtocolKind::kCascading,
};

struct Row {
  const char* protocol = "";
  const char* phase = "";
  std::size_t producers = 0;  // per-channel fan-in: n - 1
  bool quiesced = false;
  std::uint64_t delivered = 0;
  SimTime wall_us = 0;
  double msgs_per_sec = 0;
  bench::LatencySummary latency;
  double piggyback_per_msg = 0;
  double recovery_mean_us = 0;
  double recovery_max_us = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t token_retries = 0;
};

Row run_one(ProtocolKind protocol, std::size_t n, std::size_t nodes,
            std::uint64_t seed, std::size_t crashes) {
  TcpClusterConfig config;
  config.n = n;
  config.nodes = nodes;
  config.seed = seed;
  config.protocol = protocol;
  config.workload.intensity = 6;
  config.workload.depth = 48;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.process.retransmit_on_failure = crashes > 0;
  config.enable_oracle = false;
  config.time_cap = millis(30000);
  if (crashes > 0) {
    Rng rng(seed * 977 + 3);
    config.crashes =
        FailurePlan::random(rng, n, crashes, millis(20), millis(120)).crashes;
  }

  TcpCluster cluster(config);
  const TcpClusterResult result = cluster.run();

  Row row;
  row.protocol = protocol_name(protocol);
  row.phase = crashes > 0 ? "crashes" : "failure_free";
  row.producers = n - 1;
  row.quiesced = result.quiesced;
  row.delivered = result.metrics.messages_delivered;
  row.wall_us = result.wall_time;
  const double wall_s = static_cast<double>(result.wall_time) / 1e6;
  row.msgs_per_sec =
      wall_s > 0 ? static_cast<double>(row.delivered) / wall_s : 0.0;
  row.latency = bench::LatencySummary::of(result.delivery_latency_us);
  row.piggyback_per_msg = result.metrics.piggyback_per_message();
  row.recovery_mean_us = result.metrics.restart_latency.mean();
  row.recovery_max_us = result.metrics.restart_latency.max();
  row.rollbacks = result.metrics.rollbacks;
  row.frames_tx = result.tcp.frames_tx;
  row.bytes_tx = result.tcp.bytes_tx;
  row.token_retries = result.tcp.token_retries;
  return row;
}

std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

Row row_of_node_results(const char* protocol, const char* phase,
                        std::size_t n,
                        const std::vector<TcpNodeResult>& nodes) {
  Row row;
  row.protocol = protocol;
  row.phase = phase;
  row.producers = n - 1;
  row.quiesced = true;
  Metrics metrics;
  telemetry::FixedHistogram latency;
  for (const TcpNodeResult& node : nodes) {
    row.quiesced = row.quiesced && node.quiesced;
    row.wall_us = std::max(row.wall_us, node.wall_time);
    metrics.merge_from(node.metrics);
    latency.merge_from(node.delivery_latency_us);
    row.frames_tx += node.tcp.frames_tx;
    row.bytes_tx += node.tcp.bytes_tx;
    row.token_retries += node.tcp.token_retries;
  }
  row.delivered = metrics.messages_delivered;
  const double wall_s = static_cast<double>(row.wall_us) / 1e6;
  row.msgs_per_sec =
      wall_s > 0 ? static_cast<double>(row.delivered) / wall_s : 0.0;
  row.latency = bench::LatencySummary::of(latency);
  row.piggyback_per_msg = metrics.piggyback_per_message();
  row.recovery_mean_us = metrics.restart_latency.mean();
  row.recovery_max_us = metrics.restart_latency.max();
  row.rollbacks = metrics.rollbacks;
  return row;
}

/// Run the fleet a topology file describes on its fixed ports: all nodes in
/// this process, or one node of a fleet whose peers run elsewhere.
Row run_topology(const TcpTopology& topo, const std::string& node_arg,
                 ProtocolKind protocol, WorkloadKind workload,
                 std::uint64_t seed) {
  WorkloadSpec wl;
  wl.kind = workload;
  wl.intensity = 6;
  wl.depth = 48;
  wl.all_seed = true;
  ProcessConfig process;
  process.flush_interval = millis(10);
  process.checkpoint_interval = millis(50);

  std::vector<std::uint32_t> ids;
  if (node_arg == "all") {
    for (std::uint32_t id = 0; id < topo.nodes.size(); ++id) ids.push_back(id);
  } else {
    ids.push_back(
        static_cast<std::uint32_t>(std::strtoul(node_arg.c_str(), nullptr, 10)));
  }

  std::vector<std::unique_ptr<TcpNode>> nodes;
  for (std::uint32_t id : ids) {
    TcpNodeConfig nc;
    nc.topology = topo;
    nc.node = id;
    nc.seed = seed;
    nc.protocol = protocol;
    nc.workload = wl;
    nc.process = process;
    nc.time_cap = millis(30000);
    nodes.push_back(std::make_unique<TcpNode>(std::move(nc)));
  }
  std::vector<TcpNodeResult> results(nodes.size());
  std::vector<std::thread> threads;
  threads.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    threads.emplace_back([&, i] { results[i] = nodes[i]->run(); });
  }
  for (std::thread& t : threads) t.join();
  return row_of_node_results(protocol_name(protocol),
                             node_arg == "all" ? "topology" : "topology_node",
                             topo.n, results);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_file = "BENCH_tcp.json";
  std::size_t n = 8;
  std::size_t nodes = 4;
  std::uint64_t seed = 1;
  std::size_t crashes = 2;
  std::string topology_file;
  std::string node_arg = "all";
  std::string protocol_arg = "dg";
  std::string workload_arg = "counter";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_file = arg + 6;
    } else if (std::strncmp(arg, "--n=", 4) == 0) {
      n = std::strtoull(arg + 4, nullptr, 10);
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      nodes = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--crashes=", 10) == 0) {
      crashes = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--topology=", 11) == 0) {
      topology_file = arg + 11;
    } else if (std::strncmp(arg, "--node=", 7) == 0) {
      node_arg = arg + 7;
    } else if (std::strncmp(arg, "--protocol=", 11) == 0) {
      protocol_arg = arg + 11;
    } else if (std::strncmp(arg, "--workload=", 11) == 0) {
      workload_arg = arg + 11;
    } else {
      std::fprintf(stderr,
                   "bench_tcp_throughput: unknown flag '%s' "
                   "(--out= --n= --nodes= --seed= --crashes= --topology= "
                   "--node= --protocol= --workload=)\n",
                   arg);
      return 2;
    }
  }

  std::vector<Row> rows;
  std::vector<Row> fanin_rows;
  if (!topology_file.empty()) {
    TcpTopology topo;
    {
      std::ifstream in(topology_file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "bench_tcp_throughput: cannot open '%s'\n",
                     topology_file.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      try {
        topo = TcpTopology::parse(text.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_tcp_throughput: bad topology: %s\n",
                     e.what());
        return 2;
      }
    }
    for (const TcpNodeSpec& spec : topo.nodes) {
      if (spec.port == 0) {
        std::fprintf(stderr,
                     "bench_tcp_throughput: topology node %u has no fixed "
                     "port; --topology mode needs concrete ports (generate "
                     "the file with optrec_node --base-port=P "
                     "--print-topology)\n",
                     spec.id);
        return 2;
      }
    }
    WorkloadKind workload;
    if (workload_arg == "counter") {
      workload = WorkloadKind::kCounter;
    } else if (workload_arg == "pingpong") {
      workload = WorkloadKind::kPingPong;
    } else if (workload_arg == "bank") {
      workload = WorkloadKind::kBank;
    } else if (workload_arg == "gossip") {
      workload = WorkloadKind::kGossip;
    } else {
      // The client-driven service workload has no self-seeded traffic;
      // point optrec_loadgen at optrec_node --serve for that (SERVICE.md).
      std::fprintf(stderr, "bench_tcp_throughput: unknown workload '%s'\n",
                   workload_arg.c_str());
      return 2;
    }
    ProtocolKind protocol;
    try {
      protocol = protocol_from_name(protocol_arg);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bench_tcp_throughput: %s\n", e.what());
      return 2;
    }
    std::printf(
        "bench_tcp_throughput: topology=%s node=%s protocol=%s workload=%s "
        "n=%zu nodes=%zu seed=%llu\n\n",
        topology_file.c_str(), node_arg.c_str(), protocol_name(protocol),
        workload_arg.c_str(), topo.n, topo.nodes.size(),
        (unsigned long long)seed);
    rows.push_back(run_topology(topo, node_arg, protocol, workload, seed));
    n = topo.n;
  } else {
  std::printf("bench_tcp_throughput: n=%zu nodes=%zu seed=%llu crashes=%zu\n\n",
              n, nodes, (unsigned long long)seed, crashes);

  for (ProtocolKind protocol : kProtocols) {
    rows.push_back(run_one(protocol, n, nodes, seed, 0));
    rows.push_back(run_one(protocol, n, nodes, seed, crashes));
  }
  // Channel fan-in sweep: n = 2/5/17 processes puts 1/4/16 producers on
  // every inbox channel and per-peer outbound ring — the contention axis
  // bench_channel isolates, here over real loopback sockets.
  for (std::size_t fanin_n : {std::size_t{2}, std::size_t{5},
                              std::size_t{17}}) {
    Row row = run_one(ProtocolKind::kDamaniGarg, fanin_n,
                      std::min(nodes, fanin_n), seed, 0);
    row.phase = "fanin";
    fanin_rows.push_back(row);
  }
  }

  TablePrinter table({"protocol", "phase", "msgs/s", "p50 us", "p90 us",
                      "p99 us", "piggyback B/msg", "recovery ms", "rollbacks",
                      "tok-retry", "quiesced"});
  for (const Row& r : rows) {
    table.add_row({r.protocol, r.phase, fmt(r.msgs_per_sec, 0),
                   fmt(r.latency.p50, 0), fmt(r.latency.p90, 0),
                   fmt(r.latency.p99, 0), fmt(r.piggyback_per_msg),
                   fmt(r.recovery_mean_us / 1000.0, 2),
                   std::to_string(r.rollbacks),
                   std::to_string(r.token_retries), r.quiesced ? "yes" : "NO"});
  }
  table.print(std::cout);

  if (!fanin_rows.empty()) {
    std::printf("\nchannel fan-in sweep (dg, failure-free):\n");
    TablePrinter fanin_table({"producers/chan", "msgs/s", "p50 us", "p90 us",
                              "p99 us", "quiesced"});
    for (const Row& r : fanin_rows) {
      fanin_table.add_row({std::to_string(r.producers), fmt(r.msgs_per_sec, 0),
                           fmt(r.latency.p50, 0), fmt(r.latency.p90, 0),
                           fmt(r.latency.p99, 0), r.quiesced ? "yes" : "NO"});
    }
    fanin_table.print(std::cout);
    rows.insert(rows.end(), fanin_rows.begin(), fanin_rows.end());
  }

  std::ofstream os(out_file, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_tcp_throughput: cannot open '%s'\n",
                 out_file.c_str());
    return 2;
  }
  JsonWriter w(os);
  w.begin_object();
  bench::write_bench_preamble(w, "tcp");
  w.key("config").begin_object();
  w.kv("backend", "tcp");
  w.kv("n", std::uint64_t{n});
  w.kv("nodes", std::uint64_t{nodes});
  w.kv("seed", seed);
  w.kv("crashes", std::uint64_t{crashes});
  w.kv("workload", topology_file.empty() ? "counter" : workload_arg.c_str());
  if (!topology_file.empty()) {
    w.kv("topology", topology_file);
    w.kv("node", node_arg);
  }
  w.end_object();
  w.key("results").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("protocol", r.protocol);
    w.kv("phase", r.phase);
    w.kv("producers_per_channel", std::uint64_t{r.producers});
    w.kv("quiesced", r.quiesced);
    w.kv("messages_delivered", r.delivered);
    w.kv("wall_time_us", r.wall_us);
    w.kv("msgs_per_sec", r.msgs_per_sec);
    bench::write_latency_fields(w, "delivery_latency", r.latency);
    w.kv("piggyback_bytes_per_msg", r.piggyback_per_msg);
    w.kv("recovery_mean_us", r.recovery_mean_us);
    w.kv("recovery_max_us", r.recovery_max_us);
    w.kv("rollbacks", r.rollbacks);
    w.kv("tcp_frames_tx", r.frames_tx);
    w.kv("tcp_bytes_tx", r.bytes_tx);
    w.kv("tcp_token_retries", r.token_retries);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  os.flush();
  std::printf("\nwrote %s\n", out_file.c_str());

  for (const Row& r : rows) {
    if (!r.quiesced) {
      std::fprintf(stderr, "FAIL: %s/%s did not quiesce\n", r.protocol,
                   r.phase);
      return 1;
    }
  }
  return 0;
}
