// E9 — regenerates the "low overhead during failure-free operation" claim
// (Section 1 / Section 6.9).
//
// All protocols run the identical workload with no failures. The columns
// show where each scheme pays: pessimistic logging pays a synchronous stable
// write per delivery (modelled as added delivery latency -> longer
// makespan); sender-based logging pays a three-leg handshake and deferred
// sends; coordinated checkpointing pays hold-the-world rounds; Damani-Garg
// pays only the O(n) piggyback and asynchronous flushing.
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

/// Stable-write latency charged to the pessimistic baseline's deliveries
/// (modelled as extra network delay, equivalent in a DES).
constexpr SimTime kSyncWriteLatency = micros(500);

void print_table() {
  print_header("E9: failure-free overhead", "Section 1 / Section 6.9",
               "optimistic logging stays off the critical path; pessimism "
               "slows the computation; coordination blocks it");

  TablePrinter table({"protocol", "makespan", "vs plain", "piggyback B/msg",
                      "ctl msgs/app", "sync writes", "blocked time"});
  constexpr int kRuns = 5;
  double plain_makespan = 0;
  for (ProtocolKind protocol :
       {ProtocolKind::kPlain, ProtocolKind::kDamaniGarg,
        ProtocolKind::kPessimistic, ProtocolKind::kSenderBased,
        ProtocolKind::kCoordinated}) {
    double makespan = 0, piggyback = 0, ctl = 0, sync = 0, blocked = 0;
    for (int i = 0; i < kRuns; ++i) {
      auto config = standard_config(protocol, 3000 + i, 4, 8, 64);
      if (protocol == ProtocolKind::kPlain) {
        config.process.flush_interval = 0;
      }
      if (protocol == ProtocolKind::kPessimistic) {
        // Charge the synchronous stable write on the delivery path.
        config.network.min_delay += kSyncWriteLatency;
        config.network.max_delay += kSyncWriteLatency;
      }
      const auto result = run_experiment(config);
      makespan += static_cast<double>(result.end_time);
      piggyback += result.metrics.piggyback_per_message();
      ctl += static_cast<double>(result.metrics.control_messages_sent) /
             static_cast<double>(result.metrics.app_messages_sent);
      sync += static_cast<double>(result.metrics.sync_log_writes);
      blocked += static_cast<double>(result.metrics.checkpoint_blocked_time +
                                     result.metrics.recovery_blocked_time);
    }
    if (protocol == ProtocolKind::kPlain) plain_makespan = makespan;
    table.add_row(
        {protocol_name(protocol), fmt_us(makespan / kRuns),
         TablePrinter::fmt(makespan / std::max(1.0, plain_makespan), 2) + "x",
         TablePrinter::fmt(piggyback / kRuns, 1),
         TablePrinter::fmt(ctl / kRuns, 2),
         TablePrinter::fmt(sync / kRuns, 0), fmt_us(blocked / kRuns)});
  }
  table.print(std::cout);
  std::printf("\n(pessimistic deliveries carry a %llu us modelled stable "
              "write; Damani-Garg sends zero control messages failure-free "
              "— Section 6.9)\n\n",
              (unsigned long long)kSyncWriteLatency);
}

void BM_FailureFree(benchmark::State& state, ProtocolKind protocol) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(protocol, seed++, 4, 8, 64);
    benchmark::DoNotOptimize(run_experiment(config).metrics.messages_delivered);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_FailureFree, plain, ProtocolKind::kPlain);
BENCHMARK_CAPTURE(BM_FailureFree, damani_garg, ProtocolKind::kDamaniGarg);
BENCHMARK_CAPTURE(BM_FailureFree, pessimistic, ProtocolKind::kPessimistic);
BENCHMARK_CAPTURE(BM_FailureFree, sender_based, ProtocolKind::kSenderBased);
BENCHMARK_CAPTURE(BM_FailureFree, coordinated, ProtocolKind::kCoordinated);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
