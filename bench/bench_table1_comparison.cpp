// E1 — regenerates paper Table 1: comparison of recovery protocols.
//
// The paper's table is qualitative; here every implemented protocol runs the
// SAME workload twice (failure-free, and with one mid-run crash) and the
// table's columns are *measured*: rollbacks per failure, piggyback bytes,
// recovery blocking, control traffic. The paper's rows for protocols we do
// not implement (Sistla-Welch, Peterson-Kearns, Smith-Johnson-Tygar) are
// represented by their closest implemented family member; the cascading
// baseline plays the Strom-Yemini row.
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

struct Row {
  ProtocolKind protocol;
  const char* ordering;    // message ordering assumption (by construction)
  const char* concurrent;  // concurrent failures supported (by construction)
};

const Row kRows[] = {
    {ProtocolKind::kCascading, "FIFO (SY)", "1"},
    {ProtocolKind::kSenderBased, "none", "1 at a time"},
    {ProtocolKind::kPetersonKearns, "FIFO", "1"},
    {ProtocolKind::kCoordinated, "none", "1 at a time"},
    {ProtocolKind::kPessimistic, "none", "n"},
    {ProtocolKind::kDamaniGarg, "none", "n"},
};

void print_table() {
  print_header("E1: protocol comparison", "Table 1",
               "Damani-Garg: no ordering assumption, asynchronous recovery, "
               "<=1 rollback/failure, O(n) piggyback, n concurrent failures");

  TablePrinter table({"protocol", "ordering", "async recovery",
                      "rollbacks/failure", "piggyback B/msg", "ctl msgs/app",
                      "sync writes/msg", "concurrent"});
  constexpr int kRuns = 5;
  for (const Row& row : kRows) {
    // Failure-free run: overheads.
    double piggyback = 0, ctl = 0, sync = 0;
    const bool wants_fifo = row.protocol == ProtocolKind::kCascading ||
                            row.protocol == ProtocolKind::kPetersonKearns;
    for (int i = 0; i < kRuns; ++i) {
      auto config = standard_config(row.protocol, 100 + i);
      config.network.fifo = wants_fifo;
      const auto result = run_experiment(config);
      piggyback += result.metrics.piggyback_per_message();
      ctl += static_cast<double>(result.metrics.control_messages_sent) /
             static_cast<double>(result.metrics.app_messages_sent);
      sync += static_cast<double>(result.metrics.sync_log_writes) /
              static_cast<double>(result.metrics.messages_delivered);
    }

    // Single-failure run: recovery shape.
    double blocked = 0, rollbacks = 0, worst_rollbacks = 0;
    for (int i = 0; i < kRuns; ++i) {
      auto config = standard_config(row.protocol, 200 + i);
      config.network.fifo = wants_fifo;
      config.failures = FailurePlan::single(1, millis(120));
      const auto result = run_experiment(config);
      blocked += static_cast<double>(result.metrics.recovery_blocked_time);
      rollbacks += static_cast<double>(result.metrics.rollbacks);
      worst_rollbacks += static_cast<double>(
          result.metrics.max_rollbacks_per_process_per_failure());
    }

    table.add_row({protocol_name(row.protocol), row.ordering,
                   blocked == 0 ? "yes (0 us blocked)"
                                : "no (" + fmt_us(blocked / kRuns) + ")",
                   TablePrinter::fmt(rollbacks / kRuns, 1) + " (max " +
                       TablePrinter::fmt(worst_rollbacks / kRuns, 1) +
                       "/proc)",
                   TablePrinter::fmt(piggyback / kRuns, 1),
                   TablePrinter::fmt(ctl / kRuns, 2),
                   TablePrinter::fmt(sync / kRuns, 2), row.concurrent});
  }
  table.print(std::cout);
  std::printf(
      "\nunimplemented paper rows (cited, not run): Sistla-Welch'89 "
      "(FIFO, blocking, O(n)), Smith-Johnson-Tygar'95 (async, O(n^2 f) "
      "piggyback; modeled analytically in bench_overhead_piggyback)\n\n");
}

void BM_Run(benchmark::State& state, ProtocolKind protocol) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(protocol, seed++);
    config.failures = FailurePlan::single(1, millis(120));
    const auto result = run_experiment(config);
    benchmark::DoNotOptimize(result.metrics.messages_delivered);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Run, damani_garg, ProtocolKind::kDamaniGarg);
BENCHMARK_CAPTURE(BM_Run, pessimistic, ProtocolKind::kPessimistic);
BENCHMARK_CAPTURE(BM_Run, coordinated, ProtocolKind::kCoordinated);
BENCHMARK_CAPTURE(BM_Run, sender_based, ProtocolKind::kSenderBased);
BENCHMARK_CAPTURE(BM_Run, cascading, ProtocolKind::kCascading);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
