// E8 — regenerates the "recovers the maximum recoverable state" claim
// (Section 1 / Theorem 3).
//
// A single crash is injected; the run is replayed with the ground-truth
// oracle attached, and the protocol's surviving states are compared with the
// Johnson-Zwaenepoel fixpoint computed offline on the dependency graph. The
// flush-interval sweep shows the tradeoff the paper describes: logging
// frequency bounds what a failure can destroy — never more than the
// unlogged suffix and its orphans.
#include "bench_util.h"
#include "src/truth/recovery_line_oracle.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

void print_table() {
  print_header("E8: maximum recoverable state", "Theorem 3 / Section 1",
               "only orphans are rolled back: the surviving computation "
               "equals the offline Johnson-Zwaenepoel maximum");

  TablePrinter table({"flush interval", "states total", "lost", "orphans",
                      "surviving", "JZ oracle line", "match"});
  for (SimTime flush : {millis(5), millis(20), millis(80), millis(320)}) {
    ScenarioConfig config =
        standard_config(ProtocolKind::kDamaniGarg, 4242, 4, 6, 48);
    config.enable_oracle = true;
    config.process.flush_interval = flush;
    config.failures = FailurePlan::single(1, millis(120));

    Scenario scenario(config);
    scenario.run();
    const CausalityOracle& oracle = *scenario.oracle();

    std::size_t lost = 0, orphans = 0, surviving = 0, total = 0;
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      for (StateId s : oracle.states_of(pid)) {
        ++total;
        if (oracle.is_lost(s)) {
          ++lost;
        } else if (oracle.is_orphan(s)) {
          ++orphans;
        } else {
          ++surviving;
        }
      }
    }

    // Independent computation: the JZ fixpoint over the dependency graph.
    const auto line = RecoveryLineOracle::max_recoverable(
        oracle, RecoveryLineOracle::caps_from_lost(oracle));
    std::size_t jz_surviving = 0;
    bool match = true;
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      jz_surviving += line.surviving_prefix[pid];
      // Every state inside the JZ line must be useful, and rolled-back
      // states must lie outside it. (Recovery states appended after the
      // crash are useful by construction and extend past the line.)
      const auto& states = oracle.states_of(pid);
      for (std::size_t k = 0; k < line.surviving_prefix[pid]; ++k) {
        if (!oracle.is_useful(states[k])) match = false;
      }
    }

    table.add_row({fmt_us(static_cast<double>(flush)), std::to_string(total),
                   std::to_string(lost), std::to_string(orphans),
                   std::to_string(surviving), std::to_string(jz_surviving),
                   match ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\n(surviving >= JZ line because recovery itself keeps "
              "computing new useful states after the crash)\n\n");
}

void BM_OracleRecoveryLine(benchmark::State& state) {
  ScenarioConfig config =
      standard_config(ProtocolKind::kDamaniGarg, 4242, 4, 6, 48);
  config.enable_oracle = true;
  config.failures = FailurePlan::single(1, millis(120));
  Scenario scenario(config);
  scenario.run();
  const CausalityOracle& oracle = *scenario.oracle();
  for (auto _ : state) {
    const auto line = RecoveryLineOracle::max_recoverable(
        oracle, RecoveryLineOracle::caps_from_lost(oracle));
    benchmark::DoNotOptimize(line.surviving_prefix);
  }
}

}  // namespace

BENCHMARK(BM_OracleRecoveryLine);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
