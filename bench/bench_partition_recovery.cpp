// E10 — regenerates the "tolerate network partitioning" property (Section 1
// / Theorem 3): a process restarts inside a partition without waiting for
// anyone; tokens queue reliably and the far side converges after the heal.
// Contrast rows run the synchronous baselines, which must wait out the
// partition before resuming.
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

struct Row {
  double restart_latency = 0;   // crash -> computing again (failed process)
  double blocked = 0;           // time spent waiting on peers
  double end_time = 0;          // full-run makespan
  double quiesced = 0;
};

Row measure(ProtocolKind protocol, bool partitioned, int runs) {
  Row row;
  for (int i = 0; i < runs; ++i) {
    auto config = standard_config(protocol, 4000 + i, 4, 6, 48);
    config.failures = FailurePlan::single(1, millis(40));
    if (partitioned) {
      PartitionEvent split;
      split.at = millis(25);
      split.heal_at = millis(400);
      split.groups = {{0, 1}, {2, 3}};
      config.failures.partitions.push_back(split);
    }
    const auto result = run_experiment(config);
    row.restart_latency += result.metrics.restart_latency.mean();
    row.blocked += static_cast<double>(result.metrics.recovery_blocked_time);
    row.end_time += static_cast<double>(result.end_time);
    row.quiesced += result.quiesced ? 1 : 0;
  }
  row.restart_latency /= runs;
  row.blocked /= runs;
  row.end_time /= runs;
  row.quiesced /= runs;
  return row;
}

void print_table() {
  print_header("E10: recovery under network partition", "Theorem 3",
               "Damani-Garg restarts inside the partition with zero "
               "blocking; synchronous protocols stall until the heal");

  TablePrinter table({"protocol", "partition", "restart latency",
                      "blocked time", "makespan", "quiesced"});
  constexpr int kRuns = 5;
  for (ProtocolKind protocol :
       {ProtocolKind::kDamaniGarg, ProtocolKind::kCoordinated,
        ProtocolKind::kSenderBased}) {
    for (bool partitioned : {false, true}) {
      const Row row = measure(protocol, partitioned, kRuns);
      table.add_row({protocol_name(protocol), partitioned ? "yes" : "no",
                     fmt_us(row.restart_latency), fmt_us(row.blocked),
                     fmt_us(row.end_time),
                     TablePrinter::fmt(100 * row.quiesced, 0) + " %"});
    }
  }
  table.print(std::cout);
  std::printf("\n(damani-garg's restart latency and blocked time are "
              "unaffected by the partition; the blocking protocols' recovery "
              "stretches to the heal at t=400ms)\n\n");
}

void BM_PartitionedRecovery(benchmark::State& state, ProtocolKind protocol) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(protocol, seed++, 4, 6, 48);
    config.failures = FailurePlan::single(1, millis(40));
    PartitionEvent split;
    split.at = millis(25);
    split.heal_at = millis(400);
    split.groups = {{0, 1}, {2, 3}};
    config.failures.partitions.push_back(split);
    benchmark::DoNotOptimize(run_experiment(config).end_time);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_PartitionedRecovery, damani_garg,
                  ProtocolKind::kDamaniGarg);
BENCHMARK_CAPTURE(BM_PartitionedRecovery, coordinated,
                  ProtocolKind::kCoordinated);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
