// E5 — regenerates Section 6.9(2): token broadcast overhead.
//
// "A token is broadcast only when a process fails. The size of a token is
// equal to just one entry of vector clock." Measured: token bytes (constant
// in n), tokens per failure (n-1 point-to-point copies), and total token
// traffic as a fraction of message traffic in crash-heavy runs. The
// Remark-1 variant (token + restored FTVC) is reported for contrast.
#include "bench_util.h"
#include "src/net/message.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

void print_sizes() {
  print_header("E5: token overhead", "Section 6.9(2)",
               "token size == one vector-clock entry, independent of n; "
               "broadcast only on failure");

  TablePrinter table({"n", "token bytes", "token+clock bytes (Remark 1)",
                      "copies per failure"});
  for (std::size_t n : {2u, 8u, 32u, 256u}) {
    Token plain;
    plain.from = 0;
    plain.failed = {3, 100000};
    Token with_clock = plain;
    with_clock.restored_clock = Ftvc(0, n);
    table.add_row({std::to_string(n), std::to_string(plain.wire_size()),
                   std::to_string(with_clock.wire_size()),
                   std::to_string(n - 1)});
  }
  table.print(std::cout);
  std::printf("\n");
}

void print_measured() {
  std::printf("measured token traffic share (crash-heavy runs, n=6):\n\n");
  TablePrinter table({"crashes", "token bytes", "message bytes",
                      "token share", "broadcasts"});
  for (std::size_t crashes : {0u, 1u, 3u, 6u}) {
    double token_bytes = 0, msg_bytes = 0, broadcasts = 0;
    constexpr int kRuns = 4;
    for (int i = 0; i < kRuns; ++i) {
      auto config = standard_config(ProtocolKind::kDamaniGarg, 800 + i, 6);
      Rng rng(900 + i);
      config.failures =
          FailurePlan::random(rng, 6, crashes, millis(20), millis(200));
      const auto result = run_experiment(config);
      token_bytes += static_cast<double>(result.net.token_bytes);
      msg_bytes += static_cast<double>(result.net.message_bytes);
      broadcasts += static_cast<double>(result.net.token_broadcasts);
    }
    table.add_row(
        {std::to_string(crashes), TablePrinter::fmt(token_bytes / kRuns, 0),
         TablePrinter::fmt(msg_bytes / kRuns, 0),
         TablePrinter::fmt(100.0 * token_bytes / std::max(1.0, msg_bytes), 3) +
             " %",
         TablePrinter::fmt(broadcasts / kRuns, 1)});
  }
  table.print(std::cout);
  std::printf("\n");
}

void BM_TokenSerialize(benchmark::State& state) {
  Token t;
  t.from = 0;
  t.failed = {5, 999999};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.wire_size());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_TokenSerialize);

int main(int argc, char** argv) {
  print_sizes();
  print_measured();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
