// Ablation A1 — what the Section 6.1 deliverability rule buys.
//
// The same randomized crash workloads run with and without message
// postponement. Without it, a message can hide a dependency on lost states
// behind a higher-version clock entry; the ground-truth oracle counts the
// resulting *undetected* orphans (states that survive quiescence while
// depending on lost states) and consistency violations. With the rule on,
// both columns must be zero — that is the design-choice justification
// DESIGN.md calls out.
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

struct Outcome {
  double surviving_orphans = 0;
  double violations = 0;
  double postponed = 0;
  double runs_affected = 0;
};

Outcome measure(bool disable_postponement, int runs) {
  Outcome outcome;
  for (int i = 0; i < runs; ++i) {
    ScenarioConfig config =
        standard_config(ProtocolKind::kDamaniGarg, 7000 + i, 5, 6, 48);
    config.enable_oracle = true;
    config.process.ablation_disable_postponement = disable_postponement;
    // Crash bursts widen the token/message race window.
    Rng rng(7100 + i);
    config.failures =
        FailurePlan::random(rng, 5, 4, millis(20), millis(150));

    Scenario scenario(config);
    scenario.run();
    const CausalityOracle& oracle = *scenario.oracle();
    std::size_t orphans = 0;
    for (ProcessId pid = 0; pid < config.n; ++pid) {
      for (StateId s : oracle.states_of(pid)) {
        if (oracle.is_orphan(s) && !oracle.was_rolled_back(s)) ++orphans;
      }
    }
    outcome.surviving_orphans += static_cast<double>(orphans);
    outcome.violations +=
        static_cast<double>(oracle.check_consistency().size());
    outcome.postponed +=
        static_cast<double>(scenario.metrics().messages_postponed);
    if (orphans > 0) outcome.runs_affected += 1;
  }
  outcome.surviving_orphans /= runs;
  outcome.violations /= runs;
  outcome.postponed /= runs;
  outcome.runs_affected = 100.0 * outcome.runs_affected / runs;
  return outcome;
}

void print_table() {
  print_header("A1: deliverability-postponement ablation",
               "Section 6.1 (design-choice justification)",
               "without the rule, orphans escape detection; with it, the "
               "cost is a handful of briefly-postponed messages");

  TablePrinter table({"postponement", "surviving orphans/run",
                      "frontier violations/run", "runs affected",
                      "messages postponed/run"});
  constexpr int kRuns = 20;
  const Outcome off = measure(/*disable=*/true, kRuns);
  const Outcome on = measure(/*disable=*/false, kRuns);
  table.add_row({"DISABLED (ablation)",
                 TablePrinter::fmt(off.surviving_orphans, 2),
                 TablePrinter::fmt(off.violations, 2),
                 TablePrinter::fmt(off.runs_affected, 0) + " %",
                 TablePrinter::fmt(off.postponed, 1)});
  table.add_row({"enabled (Section 6.1)",
                 TablePrinter::fmt(on.surviving_orphans, 2),
                 TablePrinter::fmt(on.violations, 2),
                 TablePrinter::fmt(on.runs_affected, 0) + " %",
                 TablePrinter::fmt(on.postponed, 1)});
  table.print(std::cout);
  std::printf("\n(the enabled row's first three columns must be exactly "
              "zero — they are what the property test suite asserts)\n\n");
}

void BM_WithPostponement(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(ProtocolKind::kDamaniGarg, seed++, 5, 6, 48);
    Rng rng(seed);
    config.failures = FailurePlan::random(rng, 5, 4, millis(20), millis(150));
    benchmark::DoNotOptimize(run_experiment(config).metrics.messages_postponed);
  }
}

}  // namespace

BENCHMARK(BM_WithPostponement);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
