// E11 — regenerates Section 6.3: the cost of synchronous token logging and
// of the deliverability postponement queue.
//
// "We require all tokens to be logged synchronously ... since we expect the
// number of failures to be small, this would incur only a small overhead."
// Measured: synchronous writes per run vs failures; and how often messages
// must be postponed awaiting tokens (which depends on how slow tokens are
// relative to messages — swept via the network delay spread).
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

void print_sync_writes() {
  print_header("E11: synchronous token logging & postponement", "Section 6.3",
               "sync writes scale with failures (n-1 token logs each), not "
               "with message volume; postponement is rare and transient");

  TablePrinter table({"crashes", "sync writes", "deliveries",
                      "sync per delivery"});
  constexpr int kRuns = 4;
  for (std::size_t crashes : {0u, 1u, 3u, 6u}) {
    double sync = 0, delivered = 0;
    for (int i = 0; i < kRuns; ++i) {
      auto config = standard_config(ProtocolKind::kDamaniGarg, 5000 + i, 6);
      Rng rng(5100 + i);
      config.failures =
          FailurePlan::random(rng, 6, crashes, millis(20), millis(200));
      const auto result = run_experiment(config);
      sync += static_cast<double>(result.metrics.sync_log_writes);
      delivered += static_cast<double>(result.metrics.messages_delivered);
    }
    table.add_row({std::to_string(crashes), TablePrinter::fmt(sync / kRuns, 1),
                   TablePrinter::fmt(delivered / kRuns, 0),
                   TablePrinter::fmt(sync / std::max(1.0, delivered), 4)});
  }
  table.print(std::cout);
  std::printf("\n");
}

void print_postponement() {
  std::printf("postponement vs message/token delay spread (2 crashes, n=6):\n\n");
  TablePrinter table({"max net delay", "postponed", "released", "delivered",
                      "postponed share"});
  constexpr int kRuns = 4;
  for (SimTime max_delay : {millis(2), millis(10), millis(40), millis(120)}) {
    double postponed = 0, released = 0, delivered = 0;
    for (int i = 0; i < kRuns; ++i) {
      auto config = standard_config(ProtocolKind::kDamaniGarg, 5200 + i, 6);
      config.network.max_delay = max_delay;
      Rng rng(5300 + i);
      config.failures =
          FailurePlan::random(rng, 6, 2, millis(20), millis(150));
      const auto result = run_experiment(config);
      postponed += static_cast<double>(result.metrics.messages_postponed);
      released += static_cast<double>(result.metrics.postponed_released);
      delivered += static_cast<double>(result.metrics.messages_delivered);
    }
    table.add_row(
        {fmt_us(static_cast<double>(max_delay)),
         TablePrinter::fmt(postponed / kRuns, 1),
         TablePrinter::fmt(released / kRuns, 1),
         TablePrinter::fmt(delivered / kRuns, 0),
         TablePrinter::fmt(100.0 * postponed / std::max(1.0, delivered), 2) +
             " %"});
  }
  table.print(std::cout);
  std::printf("\n(the wider the delay spread, the more often a new "
              "incarnation's message overtakes its failure token and must "
              "wait — Figure 5's m2)\n\n");
}

void BM_RecoveryWithPostponement(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(ProtocolKind::kDamaniGarg, seed++, 6);
    config.network.max_delay = millis(40);
    Rng rng(seed);
    config.failures = FailurePlan::random(rng, 6, 2, millis(20), millis(150));
    benchmark::DoNotOptimize(run_experiment(config).metrics.messages_postponed);
  }
}

}  // namespace

BENCHMARK(BM_RecoveryWithPostponement);

int main(int argc, char** argv) {
  print_sync_writes();
  print_postponement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
