// Fleet-scale characterization of the src/scale/ subsystem; emits
// BENCH_fleet.json (override with --out=FILE) for the CI `scale` job.
//
// Four studies, mirroring the subsystem's four parts:
//   1. piggyback sweep — run_fleet_piggyback at n=256/512/1024: the delta
//      codec's piggyback bytes/msg vs the flat FTVC, byte-exact fidelity
//      checked on every frame. Expectation: delta <= 0.35x flat at n=256
//      and the per-message delta cost grows sublinearly 256 -> 1024 while
//      the flat clock grows linearly.
//   2. crash schedules — the same model with random crash plans plus the
//      causality oracle and trace auditor: every schedule must come back
//      clean with <= 1 rollback per process per failure.
//   3. dissemination — simulate_dissemination over the k-ary relay overlay,
//      with healthy fleets and 10% of interior nodes down: O(n) messages,
//      O(log_k n) depth, fallback splits bounded by the down count.
//   4. GC sweep — run_fleet_gc across the three Remark-2 aggressiveness
//      levels: reclaimed counts rise monotonically with the level.
//
// A final live row drives a real loopback TcpCluster with both transport
// features on, so the JSON ties the model to measured socket traffic.
//
// --smoke shrinks the workloads (CI gate on a 1-core runner); the studied
// sizes stay the same so the 0.35x assertion is made at real fleet width.
// Exits non-zero if any run loses fidelity, trips the oracle, or fails to
// quiesce — "oracle-clean" is the exit code, the JSON carries the numbers.
#include <cstring>
#include <fstream>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "src/scale/fleet_model.h"
#include "src/scale/overlay.h"
#include "src/tcp/tcp_cluster.h"
#include "src/util/rng.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

bool g_smoke = false;
std::uint64_t g_seed = 42;
int g_failures = 0;

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_fleet: FAILED: %s\n", what);
    ++g_failures;
  }
}

// --- 1. piggyback sweep ----------------------------------------------------

struct SweepRow {
  std::string workload;
  scale::FleetPiggybackReport report;
};

std::vector<SweepRow> run_piggyback_sweep() {
  print_header("fleet piggyback sweep", "Section 6.9(1) at fleet width",
               "delta piggyback <= 0.35x flat at n=256, sublinear 256->1024");
  std::vector<SweepRow> rows;
  TablePrinter table({"workload", "n", "msgs", "flat B/msg", "delta B/msg",
                      "ratio", "full frames", "resyncs", "clean"});
  // pingpong = the connection-locality regime fleets live in (each process
  // talks to a stable peer set), where the stateful codec wins. counter =
  // scattered destinations, the codec's worst case, kept in the JSON as the
  // honest bound: its frames go full and the ratio sits at ~1.0.
  for (WorkloadKind workload : {WorkloadKind::kPingPong,
                                WorkloadKind::kCounter}) {
    WorkloadSpec spec;
    spec.kind = workload;
    for (std::size_t n : {256u, 512u, 1024u}) {
      scale::FleetPiggybackConfig config;
      config.n = n;
      config.seed = g_seed + n;
      config.workload = workload;
      config.intensity = g_smoke ? 2 : 4;
      config.depth = g_smoke ? 24 : 48;
      if (workload == WorkloadKind::kPingPong) {
        // Pairwise chains: every pair runs one, so depth IS the per-stream
        // frame count. Long enough that stream state amortises.
        config.all_seed = true;
        config.depth = g_smoke ? 32 : 96;
      }
      scale::FleetPiggybackReport r = scale::run_fleet_piggyback(config);
      require(r.quiesced, "piggyback sweep run quiesced");
      require(r.fidelity_mismatches == 0, "delta decode byte-exact");
      require(r.resyncs == 0, "failure-free sweep needs no resync");
      table.add_row({spec.name(), std::to_string(n),
                     std::to_string(r.app_frames),
                     TablePrinter::fmt(r.flat_piggyback_per_msg(), 1),
                     TablePrinter::fmt(r.delta_piggyback_per_msg(), 1),
                     TablePrinter::fmt(r.piggyback_ratio(), 3),
                     std::to_string(r.full_frames), std::to_string(r.resyncs),
                     r.clean() ? "yes" : "NO"});
      rows.push_back({spec.name(), std::move(r)});
    }
  }
  table.print(std::cout);
  std::printf("\n");

  // The ISSUE acceptance gate, asserted at bench level so CI only needs the
  // exit code: compression at fleet width, growing sublinearly. Judged on
  // the locality workload; the scatter rows are the documented worst case.
  const scale::FleetPiggybackReport& pp256 = rows[0].report;
  const scale::FleetPiggybackReport& pp1024 = rows[2].report;
  require(pp256.piggyback_ratio() <= 0.35,
          "delta piggyback <= 0.35x flat at n=256");
  require(pp1024.delta_piggyback_per_msg() <
              4.0 * pp256.delta_piggyback_per_msg(),
          "delta piggyback grows sublinearly from n=256 to n=1024");
  return rows;
}

// --- 2. crash schedules ----------------------------------------------------

std::vector<scale::FleetPiggybackReport> run_crash_schedules() {
  print_header("fleet crash schedules", "Theorem 1 at fleet width",
               "oracle/audit clean, <= 1 rollback per process per failure");
  std::vector<scale::FleetPiggybackReport> reports;
  TablePrinter table({"n", "crashes", "rollbacks", "max rb/failure",
                      "oracle viol", "audit viol", "clean"});
  const std::vector<std::size_t> sizes =
      g_smoke ? std::vector<std::size_t>{64} : std::vector<std::size_t>{64,
                                                                        128};
  for (std::size_t n : sizes) {
    scale::FleetPiggybackConfig config;
    config.n = n;
    config.seed = g_seed + 7 * n;
    config.intensity = g_smoke ? 3 : 4;
    config.depth = g_smoke ? 24 : 48;
    config.all_seed = true;
    config.crashes = 4;
    config.audit = true;
    scale::FleetPiggybackReport r = scale::run_fleet_piggyback(config);
    require(r.quiesced, "crash schedule quiesced");
    require(r.clean(), "crash schedule oracle/audit clean");
    require(r.max_rollbacks_per_failure <= 1,
            "<= 1 rollback per process per failure");
    table.add_row({std::to_string(n), std::to_string(r.crashes),
                   std::to_string(r.rollbacks),
                   std::to_string(r.max_rollbacks_per_failure),
                   std::to_string(r.oracle_violations),
                   std::to_string(r.audit_violations),
                   r.clean() ? "yes" : "NO"});
    reports.push_back(std::move(r));
  }
  table.print(std::cout);
  std::printf("\n");
  return reports;
}

// --- 3. dissemination ------------------------------------------------------

struct DissemRow {
  std::uint32_t n_nodes = 0;
  std::uint32_t fanout = 0;
  std::uint64_t down = 0;
  scale::DisseminationReport report;
};

std::vector<DissemRow> run_dissemination() {
  print_header("hierarchical dissemination", "flat broadcast replacement",
               "O(n) messages, O(log_k n) depth, down interiors only delay");
  std::vector<DissemRow> rows;
  TablePrinter table({"nodes", "fanout", "down", "messages", "depth",
                      "latency", "splits", "reached"});
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    for (std::uint32_t fanout : {2u, 4u, 8u}) {
      for (bool faulty : {false, true}) {
        std::unordered_set<std::uint32_t> down;
        if (faulty) {
          // 10% of nodes down, origin excluded, deterministic per cell.
          Rng rng(g_seed * 1000003 + n * 31 + fanout);
          while (down.size() < n / 10) {
            const auto victim =
                static_cast<std::uint32_t>(1 + rng.uniform(n - 1));
            down.insert(victim);
          }
        }
        const scale::DisseminationReport r =
            scale::simulate_dissemination(0, n, fanout, down, 3);
        require(r.reached + r.unreachable == n - 1,
                "dissemination covers every remote node");
        require(r.unreachable == down.size(),
                "only down nodes are left with pending singletons");
        // O(n) messages: relays+acks ~ 2(n-1), retries bounded by the
        // fallback budget per down head.
        require(r.total_messages() <= 3u * n + 3u * 3u * down.size(),
                "dissemination stays O(n) messages");
        require(r.depth <= scale::tree_depth(n - 1, fanout) + 1 +
                               static_cast<std::uint32_t>(down.empty() ? 0 : 32),
                "dissemination depth stays O(log_k n)");
        rows.push_back({n, fanout, down.size(), r});
        table.add_row({std::to_string(n), std::to_string(fanout),
                       std::to_string(down.size()),
                       std::to_string(r.total_messages()),
                       std::to_string(r.depth),
                       std::to_string(r.latency_units),
                       std::to_string(r.splits), std::to_string(r.reached)});
      }
    }
  }
  table.print(std::cout);
  std::printf("\n");
  return rows;
}

// --- 4. GC sweep -----------------------------------------------------------

std::vector<scale::FleetGcReport> run_gc_sweep() {
  print_header("Remark-2 GC sweep", "Section 5 Remark 2",
               "reclaimed storage rises with the aggressiveness level");
  std::vector<scale::FleetGcReport> reports;
  TablePrinter table({"level", "ckpts reclaimed", "log entries", "tokens",
                      "bytes", "held intervals"});
  for (scale::GcLevel level :
       {scale::GcLevel::kConservative, scale::GcLevel::kStandard,
        scale::GcLevel::kAggressive}) {
    scale::FleetGcConfig config;
    config.n = 8;
    config.seed = g_seed;
    config.intensity = g_smoke ? 4 : 6;
    config.depth = g_smoke ? 32 : 64;
    config.crashes = 1;
    config.level = level;
    scale::FleetGcReport r = scale::run_fleet_gc(config);
    require(r.quiesced, "GC sweep run quiesced");
    table.add_row({scale::gc_level_name(level),
                   std::to_string(r.checkpoints_reclaimed),
                   std::to_string(r.log_entries_reclaimed),
                   std::to_string(r.tokens_compacted),
                   std::to_string(r.reclaimed_bytes),
                   std::to_string(r.held_intervals)});
    reports.push_back(std::move(r));
  }
  table.print(std::cout);
  std::printf("\n");
  require(reports[2].reclaimed_bytes >= reports[1].reclaimed_bytes &&
              reports[1].reclaimed_bytes > 0,
          "aggressive reclaims at least as much as standard");
  return reports;
}

// --- 5. live TCP row -------------------------------------------------------

struct LiveRow {
  std::size_t n = 0;
  std::size_t nodes = 0;
  TcpClusterResult result;
};

LiveRow run_live() {
  const std::size_t n = g_smoke ? 16 : 64;
  const std::size_t nodes = g_smoke ? 4 : 16;
  std::printf("live TCP fleet: %zu processes on %zu loopback nodes, delta "
              "piggyback + fanout-2 dissemination, one crash...\n",
              n, nodes);
  TcpClusterConfig config;
  config.n = n;
  config.nodes = nodes;
  config.seed = g_seed;
  config.workload.intensity = 4;
  config.workload.depth = g_smoke ? 48 : 96;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(10);
  config.process.checkpoint_interval = millis(50);
  config.process.retransmit_on_failure = true;
  config.scale.delta_piggyback = true;
  config.scale.token_fanout = 2;
  config.crashes.push_back({millis(40), 3});
  config.enable_oracle = true;
  config.time_cap = seconds(120);

  TcpCluster cluster(config);
  LiveRow row;
  row.n = n;
  row.nodes = nodes;
  row.result = cluster.run();
  require(row.result.exit_code == 0 && row.result.quiesced,
          "live TCP fleet quiesced");
  require(cluster.oracle()->check_consistency().empty(),
          "live TCP fleet oracle clean");
  require(row.result.tcp.protocol_errors == 0, "live fleet protocol-clean");
  require(row.result.tcp.delta_frames_tx > 0, "live fleet used the codec");
  require(row.result.tcp.relays_tx > 0, "live fleet used the relay overlay");
  std::printf("  delivered=%llu delta_frames=%llu relays=%llu resyncs=%llu "
              "rollback_max=%llu\n\n",
              static_cast<unsigned long long>(
                  row.result.net.messages_delivered),
              static_cast<unsigned long long>(row.result.tcp.delta_frames_tx),
              static_cast<unsigned long long>(row.result.tcp.relays_tx),
              static_cast<unsigned long long>(row.result.tcp.delta_resyncs),
              static_cast<unsigned long long>(
                  row.result.metrics.max_rollbacks_per_process_per_failure()));
  return row;
}

// --- JSON ------------------------------------------------------------------

void write_piggyback_fields(JsonWriter& w,
                            const scale::FleetPiggybackReport& r) {
  w.kv("n", std::uint64_t{r.n});
  w.kv("quiesced", r.quiesced);
  w.kv("app_frames", r.app_frames);
  w.kv("full_frames", r.full_frames);
  w.kv("resyncs", r.resyncs);
  w.kv("fidelity_mismatches", r.fidelity_mismatches);
  w.kv("flat_piggyback_bytes", r.flat_piggyback_bytes);
  w.kv("delta_piggyback_bytes", r.delta_piggyback_bytes);
  w.kv("flat_piggyback_bytes_per_msg", r.flat_piggyback_per_msg());
  w.kv("delta_piggyback_bytes_per_msg", r.delta_piggyback_per_msg());
  w.kv("delta_to_flat_ratio", r.piggyback_ratio());
  w.kv("crashes", r.crashes);
  w.kv("rollbacks", r.rollbacks);
  w.kv("max_rollbacks_per_process_per_failure", r.max_rollbacks_per_failure);
  w.kv("oracle_violations", std::uint64_t{r.oracle_violations});
  w.kv("audit_violations", std::uint64_t{r.audit_violations});
  w.kv("clean", r.clean());
}

int write_json(const std::string& out_file,
               const std::vector<SweepRow>& sweep,
               const std::vector<scale::FleetPiggybackReport>& crash_runs,
               const std::vector<DissemRow>& dissemination,
               const std::vector<scale::FleetGcReport>& gc,
               const LiveRow& live) {
  std::ofstream os(out_file, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_fleet: cannot open '%s'\n", out_file.c_str());
    return 2;
  }
  JsonWriter w(os);
  w.begin_object();
  write_bench_preamble(w, "fleet");
  w.key("config").begin_object();
  w.kv("seed", g_seed);
  w.kv("smoke", g_smoke);
  w.end_object();
  w.key("results").begin_object();

  w.key("piggyback_sweep").begin_array();
  for (const SweepRow& r : sweep) {
    w.begin_object();
    w.kv("workload", r.workload);
    write_piggyback_fields(w, r.report);
    w.end_object();
  }
  w.end_array();

  w.key("crash_schedules").begin_array();
  for (const auto& r : crash_runs) {
    w.begin_object();
    write_piggyback_fields(w, r);
    w.end_object();
  }
  w.end_array();

  w.key("dissemination").begin_array();
  for (const DissemRow& d : dissemination) {
    w.begin_object();
    w.kv("nodes", std::uint64_t{d.n_nodes});
    w.kv("fanout", std::uint64_t{d.fanout});
    w.kv("down", d.down);
    w.kv("relays", d.report.relays);
    w.kv("retries", d.report.retries);
    w.kv("acks", d.report.acks);
    w.kv("total_messages", d.report.total_messages());
    w.kv("splits", d.report.splits);
    w.kv("depth", std::uint64_t{d.report.depth});
    w.kv("latency_units", std::uint64_t{d.report.latency_units});
    w.kv("reached", d.report.reached);
    w.kv("unreachable", d.report.unreachable);
    w.end_object();
  }
  w.end_array();

  w.key("gc_sweep").begin_array();
  for (const auto& r : gc) {
    w.begin_object();
    w.kv("level", scale::gc_level_name(r.level));
    w.kv("quiesced", r.quiesced);
    w.kv("checkpoints_reclaimed", r.checkpoints_reclaimed);
    w.kv("log_entries_reclaimed", r.log_entries_reclaimed);
    w.kv("tokens_compacted", r.tokens_compacted);
    w.kv("reclaimed_bytes", r.reclaimed_bytes);
    w.kv("held_intervals", r.held_intervals);
    w.end_object();
  }
  w.end_array();

  w.key("live_tcp").begin_object();
  w.kv("n", std::uint64_t{live.n});
  w.kv("nodes", std::uint64_t{live.nodes});
  w.kv("quiesced", live.result.quiesced);
  w.kv("messages_delivered", live.result.net.messages_delivered);
  w.kv("delta_frames_tx", live.result.tcp.delta_frames_tx);
  w.kv("delta_bytes_tx", live.result.tcp.delta_bytes_tx);
  w.kv("delta_flat_bytes", live.result.tcp.delta_flat_bytes);
  w.kv("delta_resyncs", live.result.tcp.delta_resyncs);
  w.kv("relays_tx", live.result.tcp.relays_tx);
  w.kv("relay_splits", live.result.tcp.relay_splits);
  w.kv("protocol_errors", live.result.tcp.protocol_errors);
  w.kv("rollbacks", live.result.metrics.rollbacks);
  w.kv("max_rollbacks_per_process_per_failure",
       live.result.metrics.max_rollbacks_per_process_per_failure());
  w.end_object();

  w.end_object();
  w.end_object();
  os << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_file = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_file = arg + 6;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      g_seed = std::strtoull(arg + 7, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "bench_fleet: unknown flag '%s' (--out= --seed= --smoke)\n",
                   arg);
      return 2;
    }
  }

  const auto sweep = run_piggyback_sweep();
  const auto crash_runs = run_crash_schedules();
  const auto dissemination = run_dissemination();
  const auto gc = run_gc_sweep();
  const LiveRow live = run_live();

  if (const int rc = write_json(out_file, sweep, crash_runs, dissemination,
                                gc, live);
      rc != 0) {
    return rc;
  }
  std::printf("wrote %s\n", out_file.c_str());
  if (g_failures != 0) {
    std::fprintf(stderr, "bench_fleet: %d assertion(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}
