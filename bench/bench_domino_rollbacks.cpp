// E7 — regenerates Table 1's "number of rollbacks per failure" column as a
// dynamic experiment: the domino effect.
//
// The cascading (Strom-Yemini-style) baseline re-announces on every rollback
// and may roll a process back several times for one real failure; Damani-
// Garg guarantees at most one rollback per process per failure. The sweep
// raises the causal density (hop depth / seeding) so cascades have more
// material to propagate through.
#include "bench_util.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

struct Point {
  double total_rollbacks = 0;
  double worst_per_process = 0;
  double announcements = 0;
  double states_undone = 0;
};

Point measure(ProtocolKind protocol, std::uint32_t depth, std::size_t n,
              int runs) {
  Point point;
  for (int i = 0; i < runs; ++i) {
    auto config = standard_config(protocol, 2000 + i, n, 6, depth);
    // Coarser flushing = more lost work per failure = deeper orphan chains.
    config.process.flush_interval = millis(60);
    config.process.checkpoint_interval = millis(150);
    config.network.fifo = protocol == ProtocolKind::kCascading;
    config.failures = FailurePlan::single(1, millis(100));
    const auto result = run_experiment(config);
    point.total_rollbacks += static_cast<double>(result.metrics.rollbacks);
    point.worst_per_process += static_cast<double>(
        result.metrics.max_rollbacks_per_process_per_failure());
    point.announcements += static_cast<double>(result.net.token_broadcasts);
    point.states_undone +=
        static_cast<double>(result.metrics.states_rolled_back);
  }
  point.total_rollbacks /= runs;
  point.worst_per_process /= runs;
  point.announcements /= runs;
  point.states_undone /= runs;
  return point;
}

void print_table() {
  print_header("E7: rollbacks per failure (domino effect)",
               "Table 1, 'number of rollbacks per failure' column",
               "Strom-Yemini-style cascades roll processes back repeatedly "
               "(2^n worst case); Damani-Garg: at most 1 per process");

  TablePrinter table({"n", "depth", "protocol", "rollbacks/failure",
                      "worst per process", "announcements", "states undone"});
  constexpr int kRuns = 6;
  for (std::size_t n : {4u, 6u, 8u}) {
    for (std::uint32_t depth : {32u, 96u}) {
      for (ProtocolKind protocol :
           {ProtocolKind::kDamaniGarg, ProtocolKind::kCascading}) {
        const Point p = measure(protocol, depth, n, kRuns);
        table.add_row({std::to_string(n), std::to_string(depth),
                       protocol_name(protocol),
                       TablePrinter::fmt(p.total_rollbacks, 2),
                       TablePrinter::fmt(p.worst_per_process, 2),
                       TablePrinter::fmt(p.announcements, 2),
                       TablePrinter::fmt(p.states_undone, 1)});
      }
    }
  }
  table.print(std::cout);
  std::printf("\n(damani-garg's 'worst per process' column must read 1.00 or "
              "0.00; cascading exceeds it as density grows)\n\n");
}

void BM_DominoRecovery(benchmark::State& state, ProtocolKind protocol) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto config = standard_config(protocol, seed++, 6, 6, 96);
    config.network.fifo = protocol == ProtocolKind::kCascading;
    config.failures = FailurePlan::single(1, millis(100));
    benchmark::DoNotOptimize(run_experiment(config).metrics.rollbacks);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_DominoRecovery, damani_garg, ProtocolKind::kDamaniGarg);
BENCHMARK_CAPTURE(BM_DominoRecovery, cascading, ProtocolKind::kCascading);

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
