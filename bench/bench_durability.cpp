// Durable-storage bench: the cost of making stability real.
//
// Three experiments against the file-backed WAL + snapshot store
// (src/durable/) on a real filesystem:
//
//   1. Group-commit window vs commit latency — Section 6.3's asynchronous
//      message logging amortizes one fsync over a window of appends; we
//      sweep the window and report per-commit latency percentiles and
//      fsyncs per message. Synchronous token commits ride the same path
//      with a window of one; their latency is reported alongside.
//   2. WAL replay throughput — decode + CRC-check rate over a large log,
//      the CPU-bound half of recovery.
//   3. Recovery time vs log length — full recover_into() (manifest read,
//      checkpoint load, WAL replay, compaction, manifest rewrite) against
//      on-disk stores of increasing log length.
//
// Emits BENCH_durability.json (override with --out=FILE); prints
// human-readable tables. Exits non-zero if any recovery fails to come back
// warm, so CI catches durability regressions.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/durable/durable_storage.h"
#include "src/durable/mem_fs.h"
#include "src/harness/table_printer.h"
#include "src/storage/stable_storage.h"
#include "src/telemetry/histogram.h"
#include "src/util/json.h"

using namespace optrec;

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

Message make_msg(std::uint64_t seq) {
  Message m;
  m.kind = MessageKind::kApp;
  m.src = 1;
  m.dst = 0;
  m.send_seq = seq;
  m.clock = Ftvc(1, 4);
  m.payload.assign(64, static_cast<std::uint8_t>(seq));
  return m;
}

Token make_tok(std::uint64_t ts) {
  Token t;
  t.from = 2;
  t.failed.ver = 1;
  t.failed.ts = ts;
  t.origin_pid = 2;
  t.origin_ver = 1;
  return t;
}

Checkpoint make_ckpt(std::uint64_t delivered) {
  Checkpoint c;
  c.version = 1;
  c.delivered_count = delivered;
  c.send_seq = delivered;
  c.clock = Ftvc(1, 4);
  c.app_state.assign(128, 0x5a);
  return c;
}

/// Scratch directory on the real filesystem, wiped on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "optrec-bench-XXXXXX")
            .string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::perror("bench_durability: mkdtemp");
      std::exit(2);
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// ---- 1. group-commit window sweep -----------------------------------------

struct CommitRow {
  std::uint64_t window = 0;  // 0 = synchronous token commits
  std::uint64_t messages = 0;
  std::uint64_t commits = 0;
  double fsyncs_per_msg = 0;
  bench::LatencySummary latency;
  double wal_bytes_per_msg = 0;
};

CommitRow run_group_commit(std::uint64_t window, std::uint64_t messages) {
  TempDir tmp;
  DurableOptions opts;
  opts.dir = tmp.path + "/store";
  DurableBackend backend(opts);
  backend.start_fresh();
  StableStorage storage;
  storage.attach_sink(&backend);

  telemetry::FixedHistogram commit_us;
  std::uint64_t appended = 0;
  while (appended < messages) {
    for (std::uint64_t i = 0; i < window && appended < messages; ++i) {
      storage.log().append(make_msg(appended++));
    }
    const auto start = Clock::now();
    storage.log().flush();  // one group commit: one append + one fsync
    commit_us.observe(static_cast<double>(elapsed_us(start)));
  }

  const DurableStatsSnapshot stats = backend.stats();
  CommitRow row;
  row.window = window;
  row.messages = messages;
  row.commits = commit_us.count();
  row.fsyncs_per_msg =
      static_cast<double>(stats.fsync_total) / static_cast<double>(messages);
  row.latency = bench::LatencySummary::of(commit_us);
  row.wal_bytes_per_msg = static_cast<double>(stats.wal_bytes_written) /
                          static_cast<double>(messages);
  return row;
}

CommitRow run_token_commit(std::uint64_t tokens) {
  TempDir tmp;
  DurableOptions opts;
  opts.dir = tmp.path + "/store";
  DurableBackend backend(opts);
  backend.start_fresh();
  StableStorage storage;
  storage.attach_sink(&backend);

  telemetry::FixedHistogram commit_us;
  for (std::uint64_t i = 0; i < tokens; ++i) {
    const auto start = Clock::now();
    storage.log_token(make_tok(i));  // synchronous by construction (§6.3)
    commit_us.observe(static_cast<double>(elapsed_us(start)));
  }

  const DurableStatsSnapshot stats = backend.stats();
  CommitRow row;
  row.window = 0;
  row.messages = tokens;
  row.commits = commit_us.count();
  row.fsyncs_per_msg =
      static_cast<double>(stats.fsync_total) / static_cast<double>(tokens);
  row.latency = bench::LatencySummary::of(commit_us);
  row.wal_bytes_per_msg = static_cast<double>(stats.wal_bytes_written) /
                          static_cast<double>(tokens);
  return row;
}

// ---- 2. WAL replay throughput ---------------------------------------------

struct ReplayRow {
  std::uint64_t messages = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t replay_us = 0;
  double msgs_per_sec = 0;
  double mb_per_sec = 0;
};

ReplayRow run_replay(std::uint64_t messages) {
  // Build the log in the in-memory fs: this experiment isolates the decode
  // + CRC-check rate, not disk read bandwidth.
  MemFs fs;
  fs.mkdirs("store");
  WalWriter wal(fs, "store/wal-0.log");
  constexpr std::uint64_t kBatch = 64;
  for (std::uint64_t i = 0; i < messages; ++i) {
    wal.append_message(i, make_msg(i));
    if ((i + 1) % kBatch == 0) wal.commit();
  }
  wal.commit();
  wal.append_token(make_tok(1));
  const Bytes raw = fs.read_file("store/wal-0.log").value();

  const auto start = Clock::now();
  const WalReplay replay = replay_wal(raw, wal.committed_offset());
  const std::uint64_t us = elapsed_us(start);
  if (replay.corrupt || replay.entries.size() != messages) {
    std::fprintf(stderr, "bench_durability: replay mismatch (%s)\n",
                 replay.corrupt_reason.c_str());
    std::exit(1);
  }

  ReplayRow row;
  row.messages = messages;
  row.wal_bytes = raw.size();
  row.replay_us = us;
  const double secs = static_cast<double>(us) / 1e6;
  row.msgs_per_sec = secs > 0 ? static_cast<double>(messages) / secs : 0;
  row.mb_per_sec =
      secs > 0 ? static_cast<double>(raw.size()) / (1 << 20) / secs : 0;
  return row;
}

// ---- 3. recovery time vs log length ---------------------------------------

struct RecoveryRow {
  std::uint64_t log_len = 0;
  std::uint64_t disk_bytes = 0;
  bool warm = false;
  std::uint64_t replayed = 0;
  std::uint64_t recovery_us = 0;
};

RecoveryRow run_recovery(std::uint64_t log_len) {
  TempDir tmp;
  const std::string dir = tmp.path + "/store";
  {
    DurableOptions opts;
    opts.dir = dir;
    // Keep the full log on disk: this experiment measures replay length.
    opts.compact_threshold = ~0ull;
    DurableBackend backend(opts);
    backend.start_fresh();
    StableStorage storage;
    storage.attach_sink(&backend);
    storage.checkpoints().append(make_ckpt(0));
    for (std::uint64_t i = 0; i < log_len; ++i) {
      storage.log().append(make_msg(i));
      if ((i + 1) % 64 == 0) storage.log().flush();
    }
    storage.log().flush();
    storage.log_token(make_tok(1));
    // The process is SIGKILLed here: no orderly shutdown, the next
    // incarnation sees whatever the store committed.
  }

  DurableOptions opts;
  opts.dir = dir;
  opts.compact_threshold = ~0ull;
  DurableBackend backend(opts);
  StableStorage restored;
  const auto start = Clock::now();
  const RecoveryResult result = backend.recover_into(restored);
  const std::uint64_t us = elapsed_us(start);

  RecoveryRow row;
  row.log_len = log_len;
  row.disk_bytes = backend.stats().disk_stable_bytes;
  row.warm = result.warm && !result.corrupt &&
             restored.log().total_count() == log_len;
  row.replayed = result.replayed_messages;
  row.recovery_us = us;
  return row;
}

std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_file = "BENCH_durability.json";
  std::uint64_t messages = 4096;
  std::uint64_t tokens = 512;
  std::uint64_t replay_messages = 50000;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_file = arg + 6;
    } else if (std::strncmp(arg, "--messages=", 11) == 0) {
      messages = std::strtoull(arg + 11, nullptr, 10);
    } else if (std::strncmp(arg, "--tokens=", 9) == 0) {
      tokens = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--replay=", 9) == 0) {
      replay_messages = std::strtoull(arg + 9, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "bench_durability: unknown flag '%s' "
                   "(--out= --messages= --tokens= --replay=)\n",
                   arg);
      return 2;
    }
  }

  bench::print_header(
      "bench_durability", "Section 6.3 logging costs, made durable",
      "async group commit amortizes fsyncs; sync token commits stay rare");

  const std::uint64_t windows[] = {1, 4, 16, 64};
  std::vector<CommitRow> commit_rows;
  for (std::uint64_t w : windows) {
    commit_rows.push_back(run_group_commit(w, messages));
  }
  commit_rows.push_back(run_token_commit(tokens));

  TablePrinter commit_table({"commit", "window", "count", "fsync/msg",
                             "p50 us", "p90 us", "p99 us", "WAL B/msg"});
  for (const CommitRow& r : commit_rows) {
    commit_table.add_row({r.window == 0 ? "token (sync)" : "group (async)",
                          r.window == 0 ? "1" : std::to_string(r.window),
                          std::to_string(r.commits), fmt(r.fsyncs_per_msg, 3),
                          fmt(r.latency.p50, 0), fmt(r.latency.p90, 0),
                          fmt(r.latency.p99, 0), fmt(r.wal_bytes_per_msg, 0)});
  }
  commit_table.print(std::cout);
  std::printf("\n");

  const ReplayRow replay = run_replay(replay_messages);
  std::printf("WAL replay: %llu msgs, %.1f MB in %.1f ms — %.0f msgs/s, "
              "%.0f MB/s\n\n",
              (unsigned long long)replay.messages,
              static_cast<double>(replay.wal_bytes) / (1 << 20),
              static_cast<double>(replay.replay_us) / 1000.0,
              replay.msgs_per_sec, replay.mb_per_sec);

  const std::uint64_t lengths[] = {1000, 10000, 50000};
  std::vector<RecoveryRow> recovery_rows;
  for (std::uint64_t len : lengths) recovery_rows.push_back(run_recovery(len));

  TablePrinter rec_table(
      {"log len", "disk KB", "recovery ms", "replayed", "warm"});
  for (const RecoveryRow& r : recovery_rows) {
    rec_table.add_row({std::to_string(r.log_len),
                       fmt(static_cast<double>(r.disk_bytes) / 1024.0, 0),
                       fmt(static_cast<double>(r.recovery_us) / 1000.0, 2),
                       std::to_string(r.replayed), r.warm ? "yes" : "NO"});
  }
  rec_table.print(std::cout);

  std::ofstream os(out_file, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "bench_durability: cannot open '%s'\n",
                 out_file.c_str());
    return 2;
  }
  JsonWriter w(os);
  w.begin_object();
  bench::write_bench_preamble(w, "durability");
  w.key("config").begin_object();
  w.kv("messages", messages);
  w.kv("tokens", tokens);
  w.kv("replay_messages", replay_messages);
  w.kv("payload_bytes", std::uint64_t{64});
  w.end_object();
  w.key("group_commit").begin_array();
  for (const CommitRow& r : commit_rows) {
    w.begin_object();
    w.kv("kind", r.window == 0 ? "token_sync" : "message_async");
    w.kv("window", r.window == 0 ? std::uint64_t{1} : r.window);
    w.kv("commits", r.commits);
    w.kv("fsyncs_per_msg", r.fsyncs_per_msg);
    bench::write_latency_fields(w, "commit", r.latency);
    w.kv("wal_bytes_per_msg", r.wal_bytes_per_msg);
    w.end_object();
  }
  w.end_array();
  w.key("replay").begin_object();
  w.kv("messages", replay.messages);
  w.kv("wal_bytes", replay.wal_bytes);
  w.kv("replay_us", replay.replay_us);
  w.kv("msgs_per_sec", replay.msgs_per_sec);
  w.kv("mb_per_sec", replay.mb_per_sec);
  w.end_object();
  w.key("recovery").begin_array();
  for (const RecoveryRow& r : recovery_rows) {
    w.begin_object();
    w.kv("log_len", r.log_len);
    w.kv("disk_bytes", r.disk_bytes);
    w.kv("recovery_us", r.recovery_us);
    w.kv("replayed_msgs", r.replayed);
    w.kv("warm", r.warm);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  os.flush();
  std::printf("\nwrote %s\n", out_file.c_str());

  for (const RecoveryRow& r : recovery_rows) {
    if (!r.warm) {
      std::fprintf(stderr, "FAIL: recovery at log_len=%llu was not warm\n",
                   (unsigned long long)r.log_len);
      return 1;
    }
  }
  return 0;
}
