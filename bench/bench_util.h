// Shared helpers for the experiment benches. Each bench binary regenerates
// one table/figure of the paper (see DESIGN.md §4): it prints the
// paper-shaped table from simulation metrics, then runs google-benchmark
// timings for the wall-clock aspects.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/telemetry/histogram.h"
#include "src/util/json.h"

namespace optrec::bench {

/// The standard latency emission every bench shares: p50/p90/p99 extracted
/// from the fixed-bucket histogram (telemetry::FixedHistogram), so a bench
/// table, a --metrics-json run, and a /metrics scrape all report the same
/// interpolated quantiles for the same data.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  static LatencySummary of(const telemetry::FixedHistogram& h) {
    LatencySummary s;
    s.count = h.count();
    s.p50 = h.percentile(0.50);
    s.p90 = h.percentile(0.90);
    s.p99 = h.percentile(0.99);
    return s;
  }
};

/// Emit `<prefix>_p50_us` / `_p90_us` / `_p99_us` / `_count` members into
/// the currently open JSON object.
inline void write_latency_fields(JsonWriter& w, const std::string& prefix,
                                 const LatencySummary& s) {
  w.kv(prefix + "_p50_us", s.p50);
  w.kv(prefix + "_p90_us", s.p90);
  w.kv(prefix + "_p99_us", s.p99);
  w.kv(prefix + "_count", s.count);
}

/// Unified BENCH_*.json preamble. Every bench JSON opens with the same two
/// dispatch fields, then its bench-specific "config" object, then "results":
///
///   JsonWriter w(os);
///   w.begin_object();
///   bench::write_bench_preamble(w, "fleet");
///   w.key("config").begin_object(); ... w.end_object();
///   w.key("results").begin_array(); ... w.end_array();
///   w.end_object();
///
/// so CI post-processing can dispatch on "schema" without per-file parsers.
inline void write_bench_preamble(JsonWriter& w, const std::string& name,
                                 unsigned version = 1) {
  w.kv("schema", "optrec.bench." + name + "/v" + std::to_string(version));
  w.kv("generated_by", "bench_" + name);
}

/// A standard workload configuration shared by the comparison benches so
/// protocols face identical traffic.
inline ScenarioConfig standard_config(ProtocolKind protocol,
                                      std::uint64_t seed, std::size_t n = 4,
                                      std::uint32_t intensity = 6,
                                      std::uint32_t depth = 48) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.seed = seed;
  config.n = n;
  config.workload.kind = WorkloadKind::kCounter;
  config.workload.intensity = intensity;
  config.workload.depth = depth;
  config.workload.all_seed = true;
  config.process.flush_interval = millis(20);
  config.process.checkpoint_interval = millis(100);
  config.enable_oracle = false;  // benches measure, tests verify
  return config;
}

/// Average a metric over `runs` seeds.
template <typename Fn>
double average_over_seeds(std::uint64_t base_seed, int runs, Fn metric) {
  double total = 0;
  for (int i = 0; i < runs; ++i) {
    total += metric(base_seed + static_cast<std::uint64_t>(i));
  }
  return total / runs;
}

inline std::string fmt_us(double us) {
  return TablePrinter::fmt(us / 1000.0, 2) + " ms";
}

inline void print_header(const char* experiment, const char* paper_artifact,
                         const char* expectation) {
  std::printf("==========================================================\n");
  std::printf("%s — regenerates %s\n", experiment, paper_artifact);
  std::printf("paper expectation: %s\n", expectation);
  std::printf("==========================================================\n\n");
}

}  // namespace optrec::bench
