// E6 — regenerates Section 6.9(3): history size is O(n·f).
//
// "There are at most f versions of a process and there is one entry for each
// version of a process in the history. So the size of the history is O(nf)."
// Analytic: history bytes vs n and f. Measured: actual history footprints
// after crash-heavy runs.
#include "bench_util.h"
#include "src/history/history.h"

using namespace optrec;
using namespace optrec::bench;

namespace {

History history_after_failures(std::size_t n, Version f) {
  History h(0, n);
  for (ProcessId j = 0; j < n; ++j) {
    for (Version v = 0; v < f; ++v) {
      h.observe_token(j, {v, 1000 + v});
    }
  }
  return h;
}

void print_analytic() {
  print_header("E6: history size", "Section 6.9(3)",
               "one record per known (process, version): O(n*f) bytes in "
               "cheap volatile memory");

  TablePrinter table({"n", "f (failures/process)", "history bytes",
                      "bytes per record"});
  for (std::size_t n : {2u, 8u, 32u, 128u}) {
    for (Version f : {0u, 1u, 4u, 16u}) {
      const History h = history_after_failures(n, f);
      const std::size_t records = n * (1 + f);  // initial + f token records
      table.add_row({std::to_string(n), std::to_string(f),
                     std::to_string(h.byte_size()),
                     TablePrinter::fmt(
                         static_cast<double>(h.byte_size()) /
                             static_cast<double>(records),
                         1)});
    }
  }
  table.print(std::cout);
  std::printf("\n");
}

void print_measured() {
  std::printf("measured end-of-run history footprint (n=6):\n\n");
  TablePrinter table({"crashes", "max history bytes", "checkpoint bytes"});
  for (std::size_t crashes : {0u, 2u, 6u, 12u}) {
    double hist = 0, ckpt = 0;
    constexpr int kRuns = 3;
    for (int i = 0; i < kRuns; ++i) {
      ScenarioConfig config = standard_config(ProtocolKind::kDamaniGarg,
                                              1000 + i, 6, 6, 64);
      Rng rng(1100 + i);
      config.failures =
          FailurePlan::random(rng, 6, crashes, millis(20), millis(400));
      Scenario scenario(config);
      scenario.run();
      std::size_t max_hist = 0, total_ckpt = 0;
      for (ProcessId pid = 0; pid < scenario.size(); ++pid) {
        max_hist = std::max(max_hist, scenario.dg(pid).history().byte_size());
        total_ckpt += scenario.process(pid).storage().stable_bytes();
      }
      hist += static_cast<double>(max_hist);
      ckpt += static_cast<double>(total_ckpt);
    }
    table.add_row({std::to_string(crashes), TablePrinter::fmt(hist / kRuns, 0),
                   TablePrinter::fmt(ckpt / kRuns, 0)});
  }
  table.print(std::cout);
  std::printf("\n");
}

void BM_HistoryObserveClock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  History h(0, n);
  Ftvc incoming(1 % n, n);
  incoming.tick_send();
  for (auto _ : state) {
    h.observe_message_clock(incoming);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HistoryObsoleteCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<Version>(state.range(1));
  const History h = history_after_failures(n, f);
  const Ftvc clock(0, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.is_obsolete(clock));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_HistoryObserveClock)->Arg(4)->Arg(32)->Arg(128);
BENCHMARK(BM_HistoryObsoleteCheck)->Args({4, 4})->Args({32, 4})->Args({128, 16});

int main(int argc, char** argv) {
  print_analytic();
  print_measured();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
