#!/usr/bin/env bash
# Driver for bench_tcp_throughput (docs/TCP_TRANSPORT.md).
#
# Modes:
#   run_tcp_bench.sh                 in-process loopback protocol sweep
#                                    (the CI configuration)
#   run_tcp_bench.sh --fleet         generate a fixed-port topology file and
#                                    run one bench PROCESS per node against
#                                    it over real sockets — the single-
#                                    machine template for a multi-machine
#                                    run (copy the topology file to every
#                                    machine, run the printed per-node
#                                    command there)
#
# Env/flags:
#   BUILD_DIR=build    cmake build tree holding the binaries
#   --n=8 --nodes=4 --seed=1 --base-port=41000 (fleet mode)
#   --protocol=dg --workload=counter           (fleet mode)
#   --out=BENCH_tcp.json
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
N=8
NODES=4
SEED=1
BASE_PORT=41000
PROTOCOL=dg
WORKLOAD=counter
OUT=BENCH_tcp.json
FLEET=0

for arg in "$@"; do
  case "$arg" in
    --fleet) FLEET=1 ;;
    --n=*) N="${arg#--n=}" ;;
    --nodes=*) NODES="${arg#--nodes=}" ;;
    --seed=*) SEED="${arg#--seed=}" ;;
    --base-port=*) BASE_PORT="${arg#--base-port=}" ;;
    --protocol=*) PROTOCOL="${arg#--protocol=}" ;;
    --workload=*) WORKLOAD="${arg#--workload=}" ;;
    --out=*) OUT="${arg#--out=}" ;;
    *) echo "run_tcp_bench.sh: unknown flag '$arg'" >&2; exit 2 ;;
  esac
done

BENCH="$BUILD_DIR/bench/bench_tcp_throughput"
NODE_BIN="$BUILD_DIR/src/optrec_node"
for bin in "$BENCH" "$NODE_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_tcp_bench.sh: missing $bin (build first: cmake --build $BUILD_DIR)" >&2
    exit 2
  fi
done

if [[ "$FLEET" == 0 ]]; then
  exec "$BENCH" --n="$N" --nodes="$NODES" --seed="$SEED" --out="$OUT"
fi

# --- fleet mode: one bench process per node over real sockets ---------------
TOPO="$(mktemp /tmp/tcp_bench_topo.XXXXXX.json)"
trap 'rm -f "$TOPO"' EXIT
"$NODE_BIN" --tcp-nodes="$NODES" --n="$N" --base-port="$BASE_PORT" \
  --print-topology > "$TOPO"
echo "run_tcp_bench.sh: topology $TOPO (ports $BASE_PORT..$((BASE_PORT + NODES - 1)))"
echo "run_tcp_bench.sh: per-machine command:"
echo "  $BENCH --topology=<copied file> --node=<K> --protocol=$PROTOCOL --workload=$WORKLOAD"

PIDS=()
for ((k = 0; k < NODES; k++)); do
  "$BENCH" --topology="$TOPO" --node="$k" --protocol="$PROTOCOL" \
    --workload="$WORKLOAD" --seed="$SEED" --out="${OUT%.json}.node$k.json" \
    > "${OUT%.json}.node$k.log" 2>&1 &
  PIDS+=($!)
done

STATUS=0
for ((k = 0; k < NODES; k++)); do
  if ! wait "${PIDS[$k]}"; then
    STATUS=1
    echo "run_tcp_bench.sh: node $k FAILED:" >&2
  fi
  tail -n 6 "${OUT%.json}.node$k.log" | sed "s/^/  node$k| /"
done
exit "$STATUS"
